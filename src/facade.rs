//! The `Rds` facade: one window-agnostic, shard-agnostic entry point,
//! split into a writer handle and lock-free reader handles.
//!
//! [`Rds::builder`] collects the problem parameters — dimension, the
//! near-duplicate threshold `alpha`, the window model, the shard count —
//! and assembles the backend: a single in-process sampler for
//! `shards == 1`, the sharded engine otherwise; the infinite-window
//! sampler for [`Window::Infinite`], the sliding-window hierarchy for a
//! bounded window.
//!
//! Two construction paths share that backend:
//!
//! * [`RdsBuilder::build_split`] returns the handle pair
//!   `(RdsWriter, RdsReader)`. The writer owns ingestion and decides when
//!   to [`publish`](RdsWriter::publish) an immutable, epoch-stamped
//!   [`Snapshot`]; readers are `Clone + Send + Sync`, answer every query
//!   with `&self` from the latest published snapshot, and never touch the
//!   ingest hot path — serve them from as many threads as you like.
//! * [`RdsBuilder::build`] returns the classic single-threaded [`Rds`],
//!   now a thin wrapper over the pair that publishes before every query.
//!
//! ```
//! use robust_distinct_sampling::{Rds, geometry::Point};
//!
//! let (mut writer, reader) = Rds::builder()
//!     .dim(1)
//!     .alpha(0.5)
//!     .seed(7)
//!     .build_split()
//!     .expect("valid configuration");
//! for i in 0..200u64 {
//!     writer.process(Point::new(vec![(i % 20) as f64 * 10.0]));
//! }
//! writer.publish();
//! // `reader` is Clone + Send + Sync and queries with `&self`
//! assert_eq!(reader.f0_estimate(), 20.0);
//! let sample = reader.query().expect("stream non-empty");
//! assert_eq!(sample.rep.dim(), 1);
//! ```

use rds_core::{
    Checkpointable, DistinctSampler, GroupRecord, MergedSummary, RdsError, RobustL0Sampler,
    SamplerConfig, SamplerSummary, SlidingWindowSampler, WindowSummary, DEFAULT_KAPPA_B,
};
use rds_engine::{EngineCheckpoint, ShardedEngine};
use rds_geometry::Point;
use rds_stream::{Stamp, StreamItem, Window};
use parking_lot::AtomicArc;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which concrete pipeline serves the writer. One variant per
/// (window, sharding) combination; all four speak [`DistinctSampler`] /
/// the engine's merged-summary API.
enum Backend {
    /// `shards == 1`, infinite window: Algorithm 1 in-process.
    Single(Box<RobustL0Sampler>),
    /// `shards == 1`, bounded window: Algorithm 3 in-process.
    Window(Box<SlidingWindowSampler>),
    /// `shards > 1`, infinite window.
    Engine(ShardedEngine<RobustL0Sampler>),
    /// `shards > 1`, bounded window.
    WindowEngine(ShardedEngine<SlidingWindowSampler>),
}

/// The summary a snapshot freezes: merged infinite-window state or pooled
/// window entries. Both are plain immutable data with `&self` queries.
#[derive(Clone, Debug)]
enum SnapshotSummary {
    Infinite(MergedSummary),
    Window(WindowSummary),
}

// The vendored serde derive handles only named-field structs; the enum
// maps to `{ "kind": ..., "summary": ... }` by hand.
impl Serialize for SnapshotSummary {
    fn to_value(&self) -> serde::Value {
        let (kind, inner) = match self {
            SnapshotSummary::Infinite(s) => ("infinite", s.to_value()),
            SnapshotSummary::Window(s) => ("window", s.to_value()),
        };
        serde::Value::Map(vec![
            ("kind".to_string(), serde::Value::Str(kind.to_string())),
            ("summary".to_string(), inner),
        ])
    }
}

impl Deserialize for SnapshotSummary {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let kind = match value.get("kind") {
            Some(serde::Value::Str(s)) => s.as_str(),
            _ => return Err(serde::DeError::missing("kind")),
        };
        let inner = value
            .get("summary")
            .ok_or_else(|| serde::DeError::missing("summary"))?;
        match kind {
            "infinite" => Ok(SnapshotSummary::Infinite(MergedSummary::from_value(inner)?)),
            "window" => Ok(SnapshotSummary::Window(WindowSummary::from_value(inner)?)),
            other => Err(serde::DeError::custom(format!(
                "unknown snapshot kind `{other}`"
            ))),
        }
    }
}

/// A frozen, epoch-stamped view of everything the writer had published:
/// immutable plain data, so any number of readers (or offline consumers —
/// it serializes, see `rds snapshot`) can query it concurrently with
/// `&self`.
///
/// Randomness is explicit: [`Snapshot::query_at`] / [`Snapshot::query_k_at`]
/// take a `draw` token that fully determines the draw. [`RdsReader`]
/// passes fresh tokens for you (one shared counter across all clones of
/// a pair).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Snapshot {
    epoch: u64,
    seen: u64,
    window: Window,
    summary: SnapshotSummary,
}

impl Snapshot {
    /// The publication number: 0 for the empty snapshot every handle pair
    /// starts with, then incremented by one per [`RdsWriter::publish`].
    /// Strictly monotone per writer — readers can detect staleness by
    /// comparing epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of items the writer had processed when this snapshot was
    /// published (all of them are covered by the snapshot).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The window model the handle pair was built with.
    pub fn window(&self) -> Window {
        self.window
    }

    /// The estimate of the number of distinct entities covered (live
    /// entities, for window snapshots).
    pub fn f0_estimate(&self) -> f64 {
        match &self.summary {
            SnapshotSummary::Infinite(s) => s.f0_estimate(),
            SnapshotSummary::Window(s) => SamplerSummary::f0_estimate(s),
        }
    }

    /// Draws one uniformly random sampled entity; the `draw` token
    /// supplies all randomness (same token, same result). `None` iff the
    /// snapshot covers no entity.
    pub fn query_at(&self, draw: u64) -> Option<GroupRecord> {
        match &self.summary {
            SnapshotSummary::Infinite(s) => s.query_record(draw),
            SnapshotSummary::Window(s) => SamplerSummary::query_record(s, draw),
        }
    }

    /// Draws up to `k` distinct sampled entities, deterministically in
    /// `draw`.
    pub fn query_k_at(&self, k: usize, draw: u64) -> Vec<GroupRecord> {
        match &self.summary {
            SnapshotSummary::Infinite(s) => s.query_k(k, draw),
            SnapshotSummary::Window(s) => SamplerSummary::query_k(s, k, draw),
        }
    }
}

/// The shared slot a writer publishes into and readers load from: a
/// lock-free epoch pointer ([`AtomicArc`]). Readers obtain the current
/// snapshot with a single atomic pointer load (plus a pin/unpin pair for
/// reclamation) and never block; the writer publishes with one atomic
/// swap and never takes a lock — there is no lock to poison, so a
/// panicking thread can never leave the cell torn or readers stuck
/// (snapshots are swapped in whole or not at all).
#[derive(Debug)]
struct SnapshotCell {
    current: AtomicArc<Snapshot>,
}

impl SnapshotCell {
    fn new(initial: Snapshot) -> Self {
        Self {
            current: AtomicArc::new(Arc::new(initial)),
        }
    }

    fn load(&self) -> Arc<Snapshot> {
        self.current.load()
    }

    fn store(&self, snapshot: Snapshot) {
        self.current.store(Arc::new(snapshot));
    }
}

/// Extracts the backend's current state as a frozen snapshot summary —
/// the one summary-extraction path shared by [`RdsWriter::publish`] and
/// the epoch-0 snapshot of [`RdsBuilder::build_split`]. Window backends
/// are advanced to `now` first so quiet streams still expire; engine
/// backends flush so the snapshot covers every ingested item.
/// Copy-on-write: every path delegates to the backend's
/// [`DistinctSampler::summary_cow`] machinery, which `Arc`-shares the
/// candidate sets of everything untouched since the previous snapshot —
/// publication cost is proportional to what changed, not to state size
/// (and no full-summary clone or lock acquisition happens here; rds-lint
/// rule L6 enforces that invariant).
fn freeze(backend: &mut Backend, now: Stamp) -> SnapshotSummary {
    match backend {
        Backend::Single(s) => SnapshotSummary::Infinite(s.summary_cow()),
        Backend::Window(s) => {
            DistinctSampler::advance(s.as_mut(), now);
            SnapshotSummary::Window(s.summary_cow())
        }
        Backend::Engine(e) => {
            e.flush();
            SnapshotSummary::Infinite(e.snapshot())
        }
        Backend::WindowEngine(e) => {
            e.flush();
            SnapshotSummary::Window(e.snapshot())
        }
    }
}

/// Local shorthand for [`RdsError::checkpoint`].
fn checkpoint_err(reason: impl Into<String>) -> RdsError {
    RdsError::checkpoint(reason)
}

/// FNV-1a over the canonical payload JSON — the container's integrity
/// check. Not cryptographic; it catches truncation and bit rot, not
/// adversaries. Public because every container in the checkpoint family
/// (writer checkpoints here, tenant spill containers in `rds-tenant`)
/// shares this one checksum so a mixed-up file fails loudly instead of
/// parsing.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Magic string identifying an rds checkpoint container file.
pub const CHECKPOINT_MAGIC: &str = "rds-checkpoint";

/// The checkpoint container format version this build writes and reads.
pub const CHECKPOINT_FORMAT_VERSION: u64 = 1;

/// The backend's full state inside a [`WriterCheckpoint`] — one variant
/// per (window, sharding) combination, mirroring [`Backend`].
#[derive(Clone, Debug)]
enum BackendState {
    Single(rds_core::RobustL0State),
    Window(rds_core::SlidingWindowState),
    Engine(EngineCheckpoint<rds_core::RobustL0State>),
    WindowEngine(EngineCheckpoint<rds_core::SlidingWindowState>),
}

// The vendored serde derive handles only named-field structs; the enum
// maps to `{ "kind": ..., "state": ... }` by hand.
impl Serialize for BackendState {
    fn to_value(&self) -> serde::Value {
        let (kind, inner) = match self {
            BackendState::Single(s) => ("single", s.to_value()),
            BackendState::Window(s) => ("window", s.to_value()),
            BackendState::Engine(s) => ("engine", s.to_value()),
            BackendState::WindowEngine(s) => ("window-engine", s.to_value()),
        };
        serde::Value::Map(vec![
            ("kind".to_string(), serde::Value::Str(kind.to_string())),
            ("state".to_string(), inner),
        ])
    }
}

impl Deserialize for BackendState {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let kind = match value.get("kind") {
            Some(serde::Value::Str(s)) => s.as_str(),
            _ => return Err(serde::DeError::missing("kind")),
        };
        let inner = value
            .get("state")
            .ok_or_else(|| serde::DeError::missing("state"))?;
        match kind {
            "single" => Ok(BackendState::Single(Deserialize::from_value(inner)?)),
            "window" => Ok(BackendState::Window(Deserialize::from_value(inner)?)),
            "engine" => Ok(BackendState::Engine(Deserialize::from_value(inner)?)),
            "window-engine" => Ok(BackendState::WindowEngine(Deserialize::from_value(inner)?)),
            other => Err(serde::DeError::custom(format!(
                "unknown backend state kind `{other}`"
            ))),
        }
    }
}

/// The complete durable state of an [`RdsWriter`]: a config echo (the
/// resolved [`SamplerConfig`] plus window model, shard count and
/// `count_accuracy` target), the publication clock, and the backend's
/// full sampler state. Produced by [`RdsWriter::checkpoint`] /
/// [`RdsWriter::checkpoint_to`], consumed by [`RdsBuilder::restore`] /
/// [`RdsBuilder::restore_from`].
///
/// On disk it lives inside a versioned container:
///
/// ```json
/// { "magic": "rds-checkpoint", "version": 1,
///   "checksum": <fnv1a64 of the canonical payload JSON>,
///   "payload": { ...this struct... } }
/// ```
///
/// A mismatched magic, an unsupported version, a failing checksum, or a
/// config echo that contradicts explicitly-set builder parameters all
/// surface as [`RdsError::Checkpoint`] — never as silently corrupt
/// estimates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WriterCheckpoint {
    cfg: SamplerConfig,
    window: Window,
    shards: usize,
    eps: Option<f64>,
    fed: u64,
    last_stamp: Stamp,
    epoch: u64,
    /// Whether the captured content differs from what the checkpointed
    /// epoch last published (items processed since, or a window
    /// [`RdsWriter::advance`] that may have expired entries). A dirty
    /// checkpoint restores under the *next* epoch — epochs version
    /// content.
    dirty: bool,
    backend: BackendState,
}

impl WriterCheckpoint {
    /// The resolved sampler configuration echoed into the checkpoint.
    pub fn cfg(&self) -> &SamplerConfig {
        &self.cfg
    }

    /// The window model the checkpointed pair was built with.
    pub fn window(&self) -> Window {
        self.window
    }

    /// The shard count the checkpointed pair was built with.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of items the checkpointed writer had processed.
    pub fn seen(&self) -> u64 {
        self.fed
    }

    /// The epoch of the checkpointed writer's latest publication.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Serializes the checkpoint into the versioned, checksummed JSON
    /// container format.
    pub fn to_container_json(&self) -> String {
        let payload_json =
            // lint:allow(L1) serializing an in-memory Value tree has no
            // I/O and no unrepresentable cases; it cannot fail
            serde_json::to_string(&self.to_value()).expect("value serialization is infallible");
        let checksum = fnv1a64(payload_json.as_bytes());
        // Splice the payload text instead of re-serializing the tree: the
        // payload is by far the largest JSON this library produces, and
        // splicing guarantees the checksummed bytes ARE the stored bytes.
        // The spliced string is byte-identical to serializing the whole
        // container Value (compact writer, declaration-ordered keys) —
        // `container_json_round_trips_the_checkpoint` pins that down.
        format!(
            "{{\"magic\":\"{CHECKPOINT_MAGIC}\",\
             \"version\":{CHECKPOINT_FORMAT_VERSION},\
             \"checksum\":{checksum},\
             \"payload\":{payload_json}}}"
        )
    }

    /// Parses and verifies a container produced by
    /// [`Self::to_container_json`].
    ///
    /// # Errors
    ///
    /// [`RdsError::Checkpoint`] naming what failed: unparseable JSON, a
    /// missing or wrong magic, an unsupported format version, a checksum
    /// mismatch (truncated or bit-rotted payload), or a malformed
    /// payload.
    pub fn from_container_json(text: &str) -> Result<Self, RdsError> {
        let container: serde::Value = serde_json::from_str(text)
            .map_err(|e| checkpoint_err(format!("not a valid JSON container: {e}")))?;
        match container.get("magic") {
            Some(serde::Value::Str(m)) if m == CHECKPOINT_MAGIC => {}
            Some(serde::Value::Str(m)) => {
                return Err(checkpoint_err(format!(
                    "bad magic `{m}` (expected `{CHECKPOINT_MAGIC}`)"
                )))
            }
            _ => {
                return Err(checkpoint_err(format!(
                    "missing magic (expected `{CHECKPOINT_MAGIC}`) — not a checkpoint file?"
                )))
            }
        }
        let version = container
            .get("version")
            .map(u64::from_value)
            .transpose()
            .map_err(|e| checkpoint_err(format!("bad version field: {e}")))?
            .ok_or_else(|| checkpoint_err("missing format version"))?;
        if version != CHECKPOINT_FORMAT_VERSION {
            return Err(checkpoint_err(format!(
                "unsupported format version {version} (this build reads \
                 version {CHECKPOINT_FORMAT_VERSION})"
            )));
        }
        let expected = container
            .get("checksum")
            .map(u64::from_value)
            .transpose()
            .map_err(|e| checkpoint_err(format!("bad checksum field: {e}")))?
            .ok_or_else(|| checkpoint_err("missing checksum"))?;
        let payload = container
            .get("payload")
            .ok_or_else(|| checkpoint_err("missing payload"))?;
        let payload_json =
            // lint:allow(L1) serializing an in-memory Value tree has no
            // I/O and no unrepresentable cases; it cannot fail
            serde_json::to_string(payload).expect("value serialization is infallible");
        let actual = fnv1a64(payload_json.as_bytes());
        if actual != expected {
            return Err(checkpoint_err(format!(
                "checksum mismatch (stored {expected:#018x}, computed {actual:#018x}) — \
                 the payload was truncated or altered"
            )));
        }
        WriterCheckpoint::from_value(payload)
            .map_err(|e| checkpoint_err(format!("malformed payload: {e}")))
    }
}

/// When the writer publishes a fresh [`Snapshot`] on its own, besides
/// explicit [`RdsWriter::publish`] calls.
///
/// Publication costs one summary extraction (and, sharded, one flush +
/// per-shard snapshot round trip), so the cadence trades reader freshness
/// against ingest throughput: `EveryN(4096)` (the default) keeps readers
/// at most 4096 items behind at ~0.1% ingest overhead on typical
/// configurations; `Manual` gives latency-insensitive pipelines full
/// control; `EveryBatch` pins freshness to [`RdsWriter::process_batch`]
/// boundaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PublishCadence {
    /// Only explicit [`RdsWriter::publish`] calls publish.
    Manual,
    /// Publish after every `n` processed items (and on `publish`).
    EveryN(u64),
    /// Publish at the end of every [`RdsWriter::process_batch`] call
    /// (and on `publish`).
    EveryBatch,
}

/// The default automatic publication interval (items).
pub const DEFAULT_PUBLISH_EVERY: u64 = 4096;

/// The ingestion half of a split handle pair: owns the backend, feeds it,
/// and publishes immutable [`Snapshot`]s for the [`RdsReader`]s.
///
/// The writer is deliberately not `Clone`: one thread ingests. Everything
/// the serving path needs lives in the reader.
pub struct RdsWriter {
    backend: Backend,
    window: Window,
    shards: usize,
    /// The `count_accuracy` target the pair was built with, echoed into
    /// checkpoints so a restore can verify the threshold regime matches.
    eps: Option<f64>,
    fed: u64,
    last_stamp: Stamp,
    epoch: u64,
    since_publish: u64,
    /// Whether [`Self::advance`] moved a window backend's clock since the
    /// last publication. `since_publish` counts *items*, but an advance
    /// mutates window content without one — both must dirty the state,
    /// or a checkpoint taken after publish-then-advance would restore
    /// different content under an already-served epoch.
    advanced_since_publish: bool,
    cadence: PublishCadence,
    cell: Arc<SnapshotCell>,
}

impl std::fmt::Debug for RdsWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RdsWriter")
            .field("window", &self.window)
            .field("shards", &self.shards)
            .field("fed", &self.fed)
            .field("epoch", &self.epoch)
            .field("cadence", &self.cadence)
            .finish_non_exhaustive()
    }
}

impl RdsWriter {
    /// Feeds one point, stamped with the arrival index (sequence number
    /// == timestamp). Use [`Self::process_item`] for explicit timestamps
    /// (time-based windows).
    pub fn process(&mut self, p: Point) {
        let stamp = Stamp::at(self.fed);
        self.process_item(StreamItem::new(p, stamp));
    }

    /// Feeds one stamped stream item. Stamps must be non-decreasing.
    pub fn process_item(&mut self, item: StreamItem) {
        self.fed += 1;
        self.last_stamp = self.last_stamp.max(item.stamp);
        match &mut self.backend {
            Backend::Single(s) => {
                s.process(&item.point);
            }
            Backend::Window(s) => {
                s.process(&item);
            }
            Backend::Engine(e) => e.ingest_item(item),
            Backend::WindowEngine(e) => e.ingest_item(item),
        }
        self.since_publish += 1;
        if let PublishCadence::EveryN(n) = self.cadence {
            if self.since_publish >= n.max(1) {
                self.publish();
            }
        }
    }

    /// Feeds every point of an iterator (stamped by arrival index), then
    /// publishes if the cadence is [`PublishCadence::EveryBatch`] and the
    /// batch contained at least one item: every non-empty batch produces
    /// exactly one epoch bump, an empty batch produces none (there is
    /// nothing new to publish, and readers comparing epochs would
    /// otherwise see phantom updates).
    ///
    /// The infinite-window single-process backend forwards the points in
    /// chunks through the sampler's batched arrival path (one hash sweep
    /// per chunk instead of one per point) — the resulting sampler state
    /// is identical to per-point feeding. Under
    /// [`PublishCadence::EveryN`] the per-point path is kept, because a
    /// publish may fall due in the middle of a batch.
    pub fn process_batch<I>(&mut self, points: I)
    where
        I: IntoIterator<Item = Point>,
    {
        const CHUNK: usize = 256;
        let before = self.fed;
        let chunkable = matches!(self.backend, Backend::Single(_))
            && !matches!(self.cadence, PublishCadence::EveryN(_));
        if chunkable {
            let mut points = points.into_iter();
            let mut buf: Vec<Point> = Vec::with_capacity(CHUNK);
            loop {
                buf.clear();
                buf.extend(points.by_ref().take(CHUNK));
                if buf.is_empty() {
                    break;
                }
                if let Backend::Single(s) = &mut self.backend {
                    s.process_batch(&buf);
                }
                // Same bookkeeping as per-point feeding: arrival-index
                // stamps are monotone, so only the chunk's last one can
                // advance the clock.
                self.fed += buf.len() as u64;
                self.last_stamp = self.last_stamp.max(Stamp::at(self.fed - 1));
                self.since_publish += buf.len() as u64;
            }
        } else {
            for p in points {
                self.process(p);
            }
        }
        if self.cadence == PublishCadence::EveryBatch && self.fed > before {
            self.publish();
        }
    }

    /// Advances the clock to `now` without feeding a point: window
    /// entries older than `now` expire — immediately for the in-process
    /// window backend, at the next snapshot for sharded backends — so the
    /// next published snapshot never serves them (a no-op for the
    /// infinite window). Stamps must be non-decreasing; an older `now` is
    /// ignored.
    ///
    /// Under [`PublishCadence::EveryN`], an advance that moves the clock
    /// of a window backend counts as one tick (the counter counts
    /// *state-changing events*, not just items): a quiet windowed stream
    /// that only advances still republishes every `n` events, so readers
    /// never serve arbitrarily stale expiry state between publishes.
    pub fn advance(&mut self, now: Stamp) {
        let moved = now > self.last_stamp;
        self.last_stamp = self.last_stamp.max(now);
        let now = self.last_stamp;
        let window_moved =
            moved && matches!(self.backend, Backend::Window(_) | Backend::WindowEngine(_));
        if window_moved {
            // Window content may have changed (expiry) without an item.
            self.advanced_since_publish = true;
        }
        match &mut self.backend {
            // Infinite window: nothing expires.
            Backend::Single(_) => {}
            // Regression (PR 5): `now` used to be dropped here, so the
            // unsharded window backend kept expired entries alive (and
            // matchable by later low-stamped items) until the next
            // publish — forward it like the engine backends do.
            Backend::Window(s) => DistinctSampler::advance(s.as_mut(), now),
            Backend::Engine(e) => e.advance(now),
            Backend::WindowEngine(e) => e.advance(now),
        }
        if window_moved {
            self.since_publish += 1;
            if let PublishCadence::EveryN(n) = self.cadence {
                if self.since_publish >= n.max(1) {
                    self.publish();
                }
            }
        }
    }

    /// Publishes a fresh [`Snapshot`] covering every processed item and
    /// returns its epoch. Readers see it on their next query; snapshots
    /// they already hold stay valid (they are immutable).
    ///
    /// This is the only point where the writer does read-side work, and
    /// it is copy-on-write: sharded backends flush their batch buffers
    /// and re-merge only when a shard actually changed; single-process
    /// backends `Arc`-share every candidate set untouched since the
    /// previous publish. A publish with nothing new is `O(1)`; one after
    /// `k` changed levels copies those levels only — never the whole
    /// state. The snapshot swap itself is one lock-free atomic store.
    pub fn publish(&mut self) -> u64 {
        let summary = freeze(&mut self.backend, self.last_stamp);
        self.epoch += 1;
        self.since_publish = 0;
        self.advanced_since_publish = false;
        // Epoch monotonicity: the slot never goes backwards — readers
        // order snapshots by epoch, and restore seeds `self.epoch` from
        // the checkpoint precisely to keep this holding across restarts.
        debug_assert!(
            self.cell.load().epoch() < self.epoch,
            "published epoch must advance past the visible snapshot"
        );
        self.cell.store(Snapshot {
            epoch: self.epoch,
            seen: self.fed,
            window: self.window,
            summary,
        });
        self.epoch
    }

    /// Number of items fed through this writer (published or not).
    pub fn seen(&self) -> u64 {
        self.fed
    }

    /// The epoch of the latest published snapshot (0 = only the initial
    /// empty snapshot exists).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The window model in force.
    pub fn window(&self) -> Window {
        self.window
    }

    /// The shard count (1 = in-process sampler).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The ambient dimension the pair was built for (useful after a
    /// [`RdsBuilder::restore_from`], where the dimension comes from the
    /// checkpoint's config echo rather than the caller).
    pub fn dim(&self) -> usize {
        self.backend_cfg().dim
    }

    /// The backend's in-memory footprint in machine words — the paper's
    /// space-accounting unit ([`DistinctSampler::words`]), and the
    /// metering hook the multi-tenant registry charges its global budget
    /// with. Sharded backends are quiesced first (batch buffers flushed,
    /// the per-shard reads queued FIFO behind in-flight batches), so the
    /// figure covers every processed item; `&mut` for exactly that
    /// reason.
    pub fn words(&mut self) -> usize {
        match &mut self.backend {
            Backend::Single(s) => s.words(),
            Backend::Window(s) => s.words(),
            Backend::Engine(e) => e.words(),
            Backend::WindowEngine(e) => e.words(),
        }
    }

    /// The publication cadence in force.
    pub fn cadence(&self) -> PublishCadence {
        self.cadence
    }

    /// Changes the publication cadence mid-stream.
    pub fn set_cadence(&mut self, cadence: PublishCadence) {
        self.cadence = cadence;
    }

    /// The configuration the backend was built from.
    fn backend_cfg(&self) -> &SamplerConfig {
        match &self.backend {
            Backend::Single(s) => s.context().cfg(),
            Backend::Window(s) => s.context().cfg(),
            Backend::Engine(e) => e.config(),
            Backend::WindowEngine(e) => e.config(),
        }
    }

    /// Captures the writer's complete state as a [`WriterCheckpoint`]:
    /// the config echo, the publication clock, and the backend's full
    /// sampler state (per shard, for sharded backends). Sharded backends
    /// are quiesced first (batch buffers flushed, state capture queued
    /// behind every in-flight batch), so the checkpoint covers every item
    /// ever processed. The writer keeps running — checkpointing is
    /// non-destructive.
    pub fn checkpoint(&mut self) -> WriterCheckpoint {
        let backend = match &mut self.backend {
            Backend::Single(s) => BackendState::Single(s.checkpoint_state()),
            Backend::Window(s) => BackendState::Window(s.checkpoint_state()),
            Backend::Engine(e) => BackendState::Engine(e.checkpoint()),
            Backend::WindowEngine(e) => BackendState::WindowEngine(e.checkpoint()),
        };
        WriterCheckpoint {
            cfg: self.backend_cfg().clone(),
            window: self.window,
            shards: self.shards,
            eps: self.eps,
            fed: self.fed,
            last_stamp: self.last_stamp,
            epoch: self.epoch,
            dirty: self.since_publish > 0 || self.advanced_since_publish,
            backend,
        }
    }

    /// Writes a durable checkpoint to `path`: the [`WriterCheckpoint`] in
    /// the versioned, checksummed JSON container that
    /// [`RdsBuilder::restore_from`] reads back.
    ///
    /// The write is atomic-by-rename (a sibling temp file is written and
    /// renamed over `path`), so a crash or full disk mid-write leaves any
    /// previous checkpoint at `path` intact — the one moment a durability
    /// subsystem must not destroy its own prior state is while persisting
    /// the next one.
    ///
    /// # Errors
    ///
    /// [`RdsError::Checkpoint`] when the file cannot be written.
    pub fn checkpoint_to(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), RdsError> {
        let path = path.as_ref();
        let json = self.checkpoint().to_container_json();
        rds_core::persist::write_atomic(path, json)
            .map_err(|e| checkpoint_err(format!("write {}: {e}", path.display())))
    }
}

/// The serving half of a split handle pair: answers `query`/`query_k`/
/// `f0_estimate`/`seen` from the latest published [`Snapshot`] with
/// `&self`, never touching the ingest path.
///
/// `RdsReader` is `Clone + Send + Sync`: clone it into every serving
/// thread. All clones of a pair share one draw counter, so every query —
/// from any thread — consumes a fresh token and no two handles ever
/// replay each other's draws; the only shared mutable state is that
/// counter bump and the snapshot slot's brief `Arc` swap. (To *replay* a
/// draw deliberately, use [`Snapshot::query_at`] with an explicit
/// token.)
#[derive(Clone, Debug)]
pub struct RdsReader {
    cell: Arc<SnapshotCell>,
    draws: Arc<AtomicU64>,
}

impl RdsReader {
    fn next_draw(&self) -> u64 {
        self.draws.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The latest published snapshot. The `Arc` stays valid (and
    /// immutable) however long the caller holds it; later publications do
    /// not disturb it.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.cell.load()
    }

    /// Draws one uniformly random sampled entity from the latest
    /// snapshot. `None` iff nothing was published yet (or nothing is live
    /// in the window).
    pub fn query(&self) -> Option<GroupRecord> {
        self.snapshot().query_at(self.next_draw())
    }

    /// Draws up to `k` distinct sampled entities from the latest
    /// snapshot.
    pub fn query_k(&self, k: usize) -> Vec<GroupRecord> {
        self.snapshot().query_k_at(k, self.next_draw())
    }

    /// The estimate of the number of distinct entities in the latest
    /// snapshot (live entities, for window backends).
    pub fn f0_estimate(&self) -> f64 {
        self.snapshot().f0_estimate()
    }

    /// Number of items covered by the latest snapshot.
    pub fn seen(&self) -> u64 {
        self.snapshot().seen()
    }

    /// The epoch of the latest snapshot — monotonically non-decreasing
    /// across calls on any reader of the pair.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }
}

/// A unified robust-distinct-sampling handle over any window model and
/// shard count — the single-threaded convenience wrapper over the
/// [`RdsWriter`]/[`RdsReader`] pair ([`Rds::builder`] + `build_split`
/// for concurrent serving). Queries publish implicitly, so results always
/// reflect every processed item.
pub struct Rds {
    writer: RdsWriter,
    reader: RdsReader,
}

/// Fallible builder for [`Rds`] and the split handle pair; `dim` and
/// `alpha` are required, all other parameters have the library defaults.
/// Validation happens in [`Self::build`] / [`Self::build_split`] and
/// surfaces as [`RdsError`] — no panics.
///
/// Every parameter is tracked as explicitly-set vs defaulted so that
/// [`Self::restore_from`] can compare what the caller asked for against a
/// checkpoint's config echo: parameters left unset adopt the checkpoint's
/// values, parameters set to a conflicting value fail with
/// [`RdsError::Checkpoint`].
#[derive(Clone, Debug, Default)]
pub struct RdsBuilder {
    dim: Option<usize>,
    alpha: Option<f64>,
    window: Option<Window>,
    shards: Option<usize>,
    seed: Option<u64>,
    expected_len: Option<u64>,
    k: Option<usize>,
    kappa0: Option<f64>,
    eps: Option<f64>,
    cadence: Option<PublishCadence>,
}

/// The default PRNG seed of [`Rds::builder`].
const DEFAULT_SEED: u64 = 0xC0FF_EE00;

/// The default expected stream length of [`Rds::builder`].
const DEFAULT_EXPECTED_LEN: u64 = 1 << 20;

impl RdsBuilder {
    /// Sets the ambient dimension `d` (required).
    pub fn dim(mut self, dim: usize) -> Self {
        self.dim = Some(dim);
        self
    }

    /// Sets the near-duplicate distance threshold `alpha` (required).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Restricts queries to a sliding window ([`Window::Sequence`] /
    /// [`Window::Time`]); [`Window::Infinite`] (the default) covers the
    /// whole stream.
    pub fn window(mut self, window: Window) -> Self {
        self.window = Some(window);
        self
    }

    /// Shards ingestion across `n` worker threads (default 1 = a plain
    /// in-process sampler). Works for every window model.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n);
        self
    }

    /// Sets the PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the expected stream length `m` (an estimate is fine).
    pub fn expected_len(mut self, m: u64) -> Self {
        self.expected_len = Some(m);
        self
    }

    /// Sets the number of distinct samples per query (scales the accept
    /// thresholds, Section 2.3).
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Overrides the threshold constant `kappa_0`.
    pub fn kappa0(mut self, kappa0: f64) -> Self {
        self.kappa0 = Some(kappa0);
        self
    }

    /// Tunes the handle for F0 estimation at relative error `eps`
    /// (Section 5): the accept-set threshold becomes
    /// `ceil(kappa_B / eps^2)` instead of `kappa_0 k log m`.
    pub fn count_accuracy(mut self, eps: f64) -> Self {
        self.eps = Some(eps);
        self
    }

    /// Sets the snapshot publication cadence of the split pair (default
    /// [`PublishCadence::EveryN`] with [`DEFAULT_PUBLISH_EVERY`]).
    pub fn publish_cadence(mut self, cadence: PublishCadence) -> Self {
        self.cadence = Some(cadence);
        self
    }

    /// Shorthand for `publish_cadence(PublishCadence::EveryN(n))`.
    pub fn publish_every(self, n: u64) -> Self {
        self.publish_cadence(PublishCadence::EveryN(n))
    }

    /// Validates every parameter, assembles the backend and splits it
    /// into the ingestion and serving handles. The pair starts with an
    /// empty epoch-0 snapshot, so readers are usable (if empty-handed)
    /// before the first publication.
    ///
    /// # Errors
    ///
    /// Any [`RdsError`]: missing/invalid `dim` or `alpha`, a bad window,
    /// shard count, `k`, `kappa0`, or `eps` — never a panic.
    pub fn build_split(self) -> Result<(RdsWriter, RdsReader), RdsError> {
        let dim = self.dim.unwrap_or(0); // 0 is rejected by validation below
        let alpha = self.alpha.unwrap_or(f64::NAN); // NaN likewise
        let window = self.window.unwrap_or(Window::Infinite);
        let shards = self.shards.unwrap_or(1);
        let mut b = SamplerConfig::builder(dim, alpha)
            .seed(self.seed.unwrap_or(DEFAULT_SEED))
            .expected_len(self.expected_len.unwrap_or(DEFAULT_EXPECTED_LEN))
            .k(self.k.unwrap_or(1));
        if let Some(kappa0) = self.kappa0 {
            b = b.kappa0(kappa0);
        }
        let cfg = b.build()?;
        let threshold = match self.eps {
            Some(eps) => {
                if !(eps > 0.0 && eps <= 1.0) {
                    return Err(RdsError::InvalidEps { eps });
                }
                (DEFAULT_KAPPA_B / (eps * eps)).ceil().max(1.0) as usize
            }
            None => cfg.threshold(),
        };
        let mut backend = Self::build_backend(cfg, window, shards, threshold)?;
        // The epoch-0 snapshot: empty but well-formed, so readers work
        // (and report `seen() == 0`) before the first publication.
        let empty = freeze(&mut backend, Stamp::at(0));
        let writer = RdsWriter {
            backend,
            window,
            shards,
            eps: self.eps,
            fed: 0,
            last_stamp: Stamp::at(0),
            epoch: 0,
            since_publish: 0,
            advanced_since_publish: false,
            cadence: self.resolved_cadence(),
            cell: Arc::new(SnapshotCell::new(Snapshot {
                epoch: 0,
                seen: 0,
                window,
                summary: empty,
            })),
        };
        let reader = RdsReader {
            cell: Arc::clone(&writer.cell),
            draws: Arc::new(AtomicU64::new(0)),
        };
        Ok((writer, reader))
    }

    /// The cadence in force after defaulting.
    fn resolved_cadence(&self) -> PublishCadence {
        self.cadence
            .unwrap_or(PublishCadence::EveryN(DEFAULT_PUBLISH_EVERY))
    }

    /// Assembles the (window, shards) backend — the one construction path
    /// shared by [`Self::build_split`] and the checkpoint restore.
    fn build_backend(
        cfg: SamplerConfig,
        window: Window,
        shards: usize,
        threshold: usize,
    ) -> Result<Backend, RdsError> {
        if shards == 0 {
            return Err(RdsError::InvalidShards);
        }
        Ok(match (window, shards) {
            (Window::Infinite, 1) => {
                Backend::Single(Box::new(RobustL0Sampler::try_with_threshold(cfg, threshold)?))
            }
            (Window::Infinite, n) => {
                Backend::Engine(ShardedEngine::try_with_threshold(cfg, n, threshold)?)
            }
            (window, 1) => Backend::Window(Box::new(SlidingWindowSampler::try_with_threshold(
                cfg, window, threshold,
            )?)),
            (window, n) => Backend::WindowEngine(
                ShardedEngine::try_sliding_window_with_threshold(cfg, window, n, threshold)?,
            ),
        })
    }

    /// Restores a writer/reader pair from a checkpoint captured with
    /// [`RdsWriter::checkpoint`]: the backend is rebuilt from the saved
    /// sampler state (same candidate sets, clocks and PRNG positions), so
    /// continued ingestion and queries are bit-identical to a pair that
    /// never stopped. The pair starts with a warm snapshot so readers
    /// answer immediately — at the checkpointed epoch when the checkpoint
    /// coincided with a publication, at the next epoch otherwise (the
    /// warm content then covers items epoch `chk.epoch` never served, and
    /// epochs version content).
    ///
    /// Builder parameters left unset adopt the checkpoint's config echo;
    /// parameters set explicitly must match it. The publication cadence
    /// is the exception — it is a runtime preference, not state, and the
    /// restored writer uses whatever this builder configures.
    ///
    /// # Errors
    ///
    /// [`RdsError::Checkpoint`] when an explicitly-set parameter
    /// contradicts the config echo, or when the checkpoint is internally
    /// inconsistent (backend state of the wrong kind, embedded
    /// configuration differing from the echo, malformed sampler state).
    pub fn restore(self, chk: WriterCheckpoint) -> Result<(RdsWriter, RdsReader), RdsError> {
        fn ensure<T: PartialEq + std::fmt::Debug>(
            set: Option<T>,
            echoed: T,
            name: &str,
        ) -> Result<(), RdsError> {
            match set {
                Some(v) if v != echoed => Err(checkpoint_err(format!(
                    "config mismatch: {name} set to {v:?} but the checkpoint \
                     was built with {echoed:?}"
                ))),
                _ => Ok(()),
            }
        }
        ensure(self.dim, chk.cfg.dim, "dim")?;
        ensure(self.alpha, chk.cfg.alpha, "alpha")?;
        ensure(self.window, chk.window, "window")?;
        ensure(self.shards, chk.shards, "shards")?;
        ensure(self.seed, chk.cfg.seed, "seed")?;
        ensure(self.expected_len, chk.cfg.expected_len, "expected_len")?;
        ensure(self.k, chk.cfg.k, "k")?;
        ensure(self.kappa0, chk.cfg.kappa0, "kappa0")?;
        ensure(self.eps, chk.eps.unwrap_or(f64::NAN), "count_accuracy eps")?;
        chk.cfg.validate()?;

        fn ensure_cfg(embedded: &SamplerConfig, echo: &SamplerConfig) -> Result<(), RdsError> {
            if embedded != echo {
                return Err(checkpoint_err(
                    "backend sampler state embeds a configuration differing \
                     from the checkpoint's config echo",
                ));
            }
            Ok(())
        }
        let mut backend = match (chk.window, chk.shards, chk.backend) {
            (Window::Infinite, 1, BackendState::Single(st)) => {
                ensure_cfg(st.cfg(), &chk.cfg)?;
                Backend::Single(Box::new(RobustL0Sampler::try_from_state(st)?))
            }
            (window, 1, BackendState::Window(st)) if !window.is_infinite() => {
                ensure_cfg(st.cfg(), &chk.cfg)?;
                if st.window() != window {
                    return Err(checkpoint_err(format!(
                        "window state covers {:?} but the checkpoint echoes {window:?}",
                        st.window()
                    )));
                }
                Backend::Window(Box::new(SlidingWindowSampler::try_from_state(st)?))
            }
            // Per-shard validation (each state's embedded config, shard
            // window agreement) happens inside `ShardedEngine::try_restore`;
            // here only the echo-level facts the engine cannot know are
            // checked.
            (Window::Infinite, n, BackendState::Engine(ec)) if n > 1 => {
                ensure_cfg(ec.config(), &chk.cfg)?;
                if ec.n_shards() != n {
                    return Err(checkpoint_err(format!(
                        "engine state holds {} shards but the checkpoint echoes {n}",
                        ec.n_shards()
                    )));
                }
                Backend::Engine(ShardedEngine::try_restore(ec)?)
            }
            (window, n, BackendState::WindowEngine(ec)) if !window.is_infinite() && n > 1 => {
                ensure_cfg(ec.config(), &chk.cfg)?;
                if ec.n_shards() != n {
                    return Err(checkpoint_err(format!(
                        "engine state holds {} shards but the checkpoint echoes {n}",
                        ec.n_shards()
                    )));
                }
                if let Some(st) = ec.states().first() {
                    if st.window() != window {
                        return Err(checkpoint_err(format!(
                            "shard window state covers {:?} but the checkpoint \
                             echoes {window:?}",
                            st.window()
                        )));
                    }
                }
                Backend::WindowEngine(ShardedEngine::try_restore(ec)?)
            }
            _ => {
                return Err(checkpoint_err(
                    "backend state kind does not match the checkpoint's \
                     window/shard echo",
                ))
            }
        };
        // A warm snapshot, so readers answer immediately. Epochs version
        // *content*: when the checkpointed state differs from what epoch
        // `chk.epoch` last published (items processed since, or a window
        // advance that expired entries), the warm snapshot is published
        // as `chk.epoch + 1`, never as a reused epoch with different
        // content. A clean checkpoint keeps its epoch — the full state IS
        // the last published content.
        let summary = freeze(&mut backend, chk.last_stamp);
        let epoch = if chk.dirty { chk.epoch + 1 } else { chk.epoch };
        let writer = RdsWriter {
            backend,
            window: chk.window,
            shards: chk.shards,
            eps: chk.eps,
            fed: chk.fed,
            last_stamp: chk.last_stamp,
            epoch,
            since_publish: 0,
            advanced_since_publish: false,
            cadence: self.resolved_cadence(),
            cell: Arc::new(SnapshotCell::new(Snapshot {
                epoch,
                seen: chk.fed,
                window: chk.window,
                summary,
            })),
        };
        let reader = RdsReader {
            cell: Arc::clone(&writer.cell),
            draws: Arc::new(AtomicU64::new(0)),
        };
        Ok((writer, reader))
    }

    /// Reads, verifies and restores a checkpoint container written by
    /// [`RdsWriter::checkpoint_to`] — see [`Self::restore`].
    ///
    /// # Errors
    ///
    /// [`RdsError::Checkpoint`] for an unreadable file or any
    /// [`WriterCheckpoint::from_container_json`] / [`Self::restore`]
    /// failure.
    pub fn restore_from(
        self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(RdsWriter, RdsReader), RdsError> {
        let text = std::fs::read_to_string(path.as_ref()).map_err(|e| {
            checkpoint_err(format!("read {}: {e}", path.as_ref().display()))
        })?;
        self.restore(WriterCheckpoint::from_container_json(&text)?)
    }

    /// Validates every parameter and assembles the single-threaded
    /// [`Rds`] wrapper over the split pair. The cadence is forced to
    /// [`PublishCadence::Manual`]: `Rds` publishes before every query
    /// anyway, so automatic mid-stream publications would be pure
    /// overhead nothing ever reads.
    ///
    /// # Errors
    ///
    /// As [`Self::build_split`].
    pub fn build(self) -> Result<Rds, RdsError> {
        let (writer, reader) = self
            .publish_cadence(PublishCadence::Manual)
            .build_split()?;
        Ok(Rds { writer, reader })
    }
}

impl Rds {
    /// Starts a builder with the library defaults.
    pub fn builder() -> RdsBuilder {
        RdsBuilder::default()
    }

    /// Feeds one point, stamped with the arrival index (sequence number
    /// == timestamp). Use [`Self::process_item`] for explicit timestamps
    /// (time-based windows).
    pub fn process(&mut self, p: Point) {
        self.writer.process(p);
    }

    /// Feeds one stamped stream item. Stamps must be non-decreasing.
    pub fn process_item(&mut self, item: StreamItem) {
        self.writer.process_item(item);
    }

    /// Draws one uniformly random sampled entity, owned. `None` iff
    /// nothing was processed (or nothing is live in the window).
    /// Publishes first, so the result covers every processed item.
    pub fn query(&mut self) -> Option<GroupRecord> {
        self.writer.publish();
        self.reader.query()
    }

    /// Draws up to `k` distinct sampled entities, owned.
    pub fn query_k(&mut self, k: usize) -> Vec<GroupRecord> {
        self.writer.publish();
        self.reader.query_k(k)
    }

    /// The estimate of the number of distinct entities (in the window,
    /// for window backends).
    pub fn f0_estimate(&mut self) -> f64 {
        self.writer.publish();
        self.reader.f0_estimate()
    }

    /// Publishes and returns the frozen [`Snapshot`] covering every
    /// processed item (e.g. for `rds snapshot save`).
    pub fn snapshot(&mut self) -> Arc<Snapshot> {
        self.writer.publish();
        self.reader.snapshot()
    }

    /// Number of items fed through this handle.
    pub fn seen(&self) -> u64 {
        self.writer.seen()
    }

    /// The window model in force.
    pub fn window(&self) -> Window {
        self.writer.window()
    }

    /// The shard count (1 = in-process sampler).
    pub fn shards(&self) -> usize {
        self.writer.shards()
    }

    /// Splits the handle into its ingestion and serving halves — the
    /// migration path from single-threaded code to concurrent serving.
    pub fn split(self) -> (RdsWriter, RdsReader) {
        (self.writer, self.reader)
    }

    /// Captures the handle's complete state as a [`WriterCheckpoint`]
    /// ([`RdsWriter::checkpoint`] on the wrapped writer).
    pub fn checkpoint(&mut self) -> WriterCheckpoint {
        self.writer.checkpoint()
    }

    /// Writes a durable checkpoint to `path`
    /// ([`RdsWriter::checkpoint_to`] on the wrapped writer).
    ///
    /// # Errors
    ///
    /// [`RdsError::Checkpoint`] when the file cannot be written.
    pub fn checkpoint_to(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), RdsError> {
        self.writer.checkpoint_to(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grouped_point(i: u64, n_groups: u64) -> Point {
        Point::new(vec![(i % n_groups) as f64 * 10.0 + 0.01 * ((i / n_groups) % 3) as f64])
    }

    fn base() -> RdsBuilder {
        Rds::builder().dim(1).alpha(0.5).seed(5).expected_len(2048)
    }

    #[test]
    fn all_four_backends_agree_on_exact_counts() {
        for (window, shards) in [
            (Window::Infinite, 1),
            (Window::Infinite, 4),
            (Window::Sequence(1 << 14), 1),
            (Window::Sequence(1 << 14), 4),
        ] {
            let mut rds = base().window(window).shards(shards).build().expect("valid");
            for i in 0..360u64 {
                rds.process(grouped_point(i, 18));
            }
            assert_eq!(
                rds.f0_estimate(),
                18.0,
                "backend (window {window:?}, shards {shards}) missed the count"
            );
            let q = rds.query().expect("non-empty");
            assert!(q.count > 0);
            assert_eq!(rds.seen(), 360);
            let picks = rds.query_k(3);
            assert_eq!(picks.len(), 3);
            for a in 0..picks.len() {
                for b in (a + 1)..picks.len() {
                    assert!(!picks[a].rep.within(&picks[b].rep, 0.5));
                }
            }
        }
    }

    #[test]
    fn windowed_backends_expire_old_entities() {
        for shards in [1usize, 3] {
            let mut rds = base()
                .window(Window::Sequence(32))
                .shards(shards)
                .build()
                .expect("valid");
            for i in 0..256u64 {
                rds.process(grouped_point(i, 16));
            }
            assert_eq!(rds.f0_estimate(), 16.0);
            for _ in 0..64u64 {
                rds.process(Point::new(vec![0.0]));
            }
            assert_eq!(rds.f0_estimate(), 1.0, "shards {shards}: window did not slide");
        }
    }

    #[test]
    fn time_based_window_through_the_facade() {
        let mut rds = base().window(Window::Time(10)).shards(2).build().expect("valid");
        for g in 0..5u64 {
            rds.process_item(StreamItem::new(
                Point::new(vec![g as f64 * 10.0]),
                Stamp::new(g, 0),
            ));
        }
        assert_eq!(rds.f0_estimate(), 5.0);
        rds.process_item(StreamItem::new(Point::new(vec![990.0]), Stamp::new(5, 30)));
        assert_eq!(rds.f0_estimate(), 1.0);
    }

    #[test]
    fn count_accuracy_controls_the_threshold() {
        // eps = 1 → threshold 16: 12 groups stay exact
        let mut rds = base().count_accuracy(1.0).build().expect("valid");
        for i in 0..120u64 {
            rds.process(grouped_point(i, 12));
        }
        assert_eq!(rds.f0_estimate(), 12.0);
    }

    #[test]
    fn builder_surfaces_typed_errors() {
        assert!(matches!(
            Rds::builder().alpha(0.5).build(),
            Err(RdsError::InvalidDimension { .. })
        ));
        assert!(matches!(
            Rds::builder().dim(2).build(),
            Err(RdsError::InvalidAlpha { .. })
        ));
        assert!(matches!(
            base().shards(0).build_split(),
            Err(RdsError::InvalidShards)
        ));
        assert!(matches!(
            base().count_accuracy(0.0).build(),
            Err(RdsError::InvalidEps { .. })
        ));
        assert!(matches!(
            base().window(Window::Sequence(0)).build(),
            Err(RdsError::EmptyWindow)
        ));
        assert!(matches!(
            base().k(0).build(),
            Err(RdsError::InvalidK)
        ));
    }

    #[test]
    fn backend_swap_needs_no_signature_churn() {
        // The PR 3 contract still holds: identical calling code against
        // single and sharded backends.
        let run = |shards: usize| -> (f64, Option<GroupRecord>) {
            let mut rds = base().shards(shards).build().expect("valid");
            for i in 0..100u64 {
                rds.process(grouped_point(i, 10));
            }
            (rds.f0_estimate(), rds.query())
        };
        let (f0_single, q_single) = run(1);
        let (f0_sharded, q_sharded) = run(4);
        assert_eq!(f0_single, f0_sharded);
        assert!(q_single.is_some() && q_sharded.is_some());
    }

    #[test]
    fn reader_handles_are_send_sync_and_clone() {
        fn assert_bounds<T: Clone + Send + Sync + 'static>() {}
        assert_bounds::<RdsReader>();
        fn assert_send<T: Send>() {}
        assert_send::<RdsWriter>();
        assert_send::<Snapshot>();
    }

    #[test]
    fn readers_see_only_published_state() {
        let (mut writer, reader) = base()
            .publish_cadence(PublishCadence::Manual)
            .build_split()
            .expect("valid");
        // epoch 0: the initial empty snapshot answers (with nothing)
        assert_eq!(reader.epoch(), 0);
        assert_eq!(reader.seen(), 0);
        assert!(reader.query().is_none());
        for i in 0..100u64 {
            writer.process(grouped_point(i, 10));
        }
        // manual cadence: nothing published yet
        assert_eq!(reader.epoch(), 0);
        assert_eq!(reader.f0_estimate(), 0.0);
        let epoch = writer.publish();
        assert_eq!(epoch, 1);
        assert_eq!(reader.epoch(), 1);
        assert_eq!(reader.seen(), 100);
        assert_eq!(reader.f0_estimate(), 10.0);
        assert!(reader.query().is_some());
    }

    #[test]
    fn old_snapshots_stay_valid_after_publications() {
        let (mut writer, reader) = base()
            .publish_cadence(PublishCadence::Manual)
            .build_split()
            .expect("valid");
        for i in 0..50u64 {
            writer.process(grouped_point(i, 5));
        }
        writer.publish();
        let frozen = reader.snapshot();
        for i in 50..200u64 {
            writer.process(grouped_point(i, 20));
        }
        writer.publish();
        // the held Arc is immutable: still the epoch-1 view
        assert_eq!(frozen.epoch(), 1);
        assert_eq!(frozen.seen(), 50);
        assert_eq!(frozen.f0_estimate(), 5.0);
        // the live reader moved on
        assert_eq!(reader.epoch(), 2);
        assert_eq!(reader.f0_estimate(), 20.0);
    }

    #[test]
    fn every_n_cadence_publishes_automatically() {
        let (mut writer, reader) = base().publish_every(64).build_split().expect("valid");
        for i in 0..63u64 {
            writer.process(grouped_point(i, 7));
        }
        assert_eq!(reader.epoch(), 0, "63 < 64: not yet published");
        writer.process(grouped_point(63, 7));
        assert_eq!(reader.epoch(), 1, "64th item triggers the publication");
        assert_eq!(reader.seen(), 64);
        assert_eq!(reader.f0_estimate(), 7.0);
    }

    #[test]
    fn every_n_cadence_republishes_windowed_expiry_on_quiet_advances() {
        // Regression (windowed-expiry staleness): `advance` calls that
        // expire window entries used to never tick the `EveryN` counter,
        // so a stream that went quiet left readers serving long-expired
        // entries forever. Clock movement on a window backend now counts
        // as a cadence tick like any other state-changing event.
        let (mut writer, reader) = base()
            .window(Window::Time(10))
            .publish_every(4)
            .build_split()
            .expect("valid");
        for g in 0..4u64 {
            writer.process_item(StreamItem::new(
                Point::new(vec![g as f64 * 10.0]),
                Stamp::new(g, 0),
            ));
        }
        assert_eq!(reader.epoch(), 1, "4 items trigger the first publication");
        assert_eq!(reader.f0_estimate(), 4.0);
        // The stream goes quiet: only the clock moves, far past the
        // window, expiring everything. Three advances are below the
        // cadence; the fourth must republish without any new item.
        for t in 0..3u64 {
            writer.advance(Stamp::new(4 + t, 101 + t));
            assert_eq!(reader.epoch(), 1, "advance {t}: below the cadence");
        }
        writer.advance(Stamp::new(8, 105));
        assert_eq!(reader.epoch(), 2, "the 4th quiet advance republishes");
        assert_eq!(reader.f0_estimate(), 0.0, "readers see the expiry");
        // Infinite backends are untouched: advances never expire
        // anything there, so they must not tick the cadence either.
        let (mut writer, reader) = base().publish_every(4).build_split().expect("valid");
        writer.process(grouped_point(0, 2));
        for t in 0..8u64 {
            writer.advance(Stamp::new(10 + t, 10 + t));
        }
        assert_eq!(reader.epoch(), 0, "quiet advances on an infinite window are no-ops");
    }

    #[test]
    fn every_batch_cadence_publishes_per_batch() {
        let (mut writer, reader) = base()
            .publish_cadence(PublishCadence::EveryBatch)
            .build_split()
            .expect("valid");
        writer.process_batch((0..30u64).map(|i| grouped_point(i, 3)));
        assert_eq!(reader.epoch(), 1);
        assert_eq!(reader.seen(), 30);
        writer.process_batch((0..10u64).map(|i| grouped_point(i, 3)));
        assert_eq!(reader.epoch(), 2);
        assert_eq!(reader.seen(), 40);
    }

    #[test]
    fn split_works_for_all_four_backends() {
        for (window, shards) in [
            (Window::Infinite, 1),
            (Window::Infinite, 3),
            (Window::Sequence(1 << 12), 1),
            (Window::Sequence(1 << 12), 3),
        ] {
            let (mut writer, reader) = base()
                .window(window)
                .shards(shards)
                .publish_cadence(PublishCadence::Manual)
                .build_split()
                .expect("valid");
            for i in 0..240u64 {
                writer.process(grouped_point(i, 12));
            }
            writer.publish();
            assert_eq!(
                reader.f0_estimate(),
                12.0,
                "backend (window {window:?}, shards {shards})"
            );
            let picks = reader.query_k(4);
            assert_eq!(picks.len(), 4);
        }
    }

    #[test]
    fn writer_advance_expires_time_windows() {
        let (mut writer, reader) = base()
            .window(Window::Time(10))
            .shards(2)
            .publish_cadence(PublishCadence::Manual)
            .build_split()
            .expect("valid");
        for g in 0..6u64 {
            writer.process_item(StreamItem::new(
                Point::new(vec![g as f64 * 10.0]),
                Stamp::new(g, 0),
            ));
        }
        writer.publish();
        assert_eq!(reader.f0_estimate(), 6.0);
        // the clock moves with no new items: everything expires
        writer.advance(Stamp::new(6, 100));
        writer.publish();
        assert_eq!(reader.f0_estimate(), 0.0);
    }

    #[test]
    fn advance_is_not_rewound_by_later_low_stamped_items() {
        // Regression: after `advance` moves the clock forward, an item
        // whose auto-stamp lags behind must not roll the engine clock
        // back and resurrect expired entries — sharded and unsharded
        // backends must agree.
        for shards in [1usize, 3] {
            let (mut writer, reader) = base()
                .window(Window::Time(10))
                .shards(shards)
                .publish_cadence(PublishCadence::Manual)
                .build_split()
                .expect("valid");
            for g in 0..4u64 {
                writer.process_item(StreamItem::new(
                    Point::new(vec![g as f64 * 10.0]),
                    Stamp::new(g, 0),
                ));
            }
            writer.advance(Stamp::new(4, 100));
            // auto-stamped: time == arrival index (5), far behind 100
            writer.process(Point::new(vec![990.0]));
            writer.publish();
            assert_eq!(
                reader.f0_estimate(),
                0.0,
                "shards {shards}: the advanced clock must win"
            );
        }
    }

    #[test]
    fn cloned_readers_never_replay_each_others_draws() {
        // Clones share the draw counter: with >1 entity in the snapshot,
        // two clones issuing many queries must not produce identical
        // sequences (they would under per-clone counters, since the RNG
        // is a pure function of seed + token).
        let (mut writer, reader) = base().build_split().expect("valid");
        for i in 0..160u64 {
            writer.process(grouped_point(i, 16));
        }
        writer.publish();
        let a = reader.clone();
        let b = reader.clone();
        let seq_a: Vec<_> = (0..12).map(|_| a.query().expect("non-empty").rep).collect();
        let seq_b: Vec<_> = (0..12).map(|_| b.query().expect("non-empty").rep).collect();
        assert_ne!(seq_a, seq_b, "cloned readers replayed the same draws");
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        for window in [Window::Infinite, Window::Sequence(1 << 12)] {
            let (mut writer, reader) = base()
                .window(window)
                .publish_cadence(PublishCadence::Manual)
                .build_split()
                .expect("valid");
            for i in 0..90u64 {
                writer.process(grouped_point(i, 9));
            }
            writer.publish();
            let snap = reader.snapshot();
            let wire = serde_json::to_string(&*snap).expect("serializes");
            let back: Snapshot = serde_json::from_str(&wire).expect("deserializes");
            assert_eq!(back.epoch(), snap.epoch());
            assert_eq!(back.seen(), snap.seen());
            assert_eq!(back.window(), window);
            assert_eq!(back.f0_estimate(), snap.f0_estimate());
            // same draw token, same sample — before and after the wire
            assert_eq!(
                back.query_at(7).map(|r| r.rep),
                snap.query_at(7).map(|r| r.rep)
            );
        }
    }

    #[test]
    fn cloned_readers_draw_independently_but_share_the_snapshot() {
        let (mut writer, reader) = base().build_split().expect("valid");
        for i in 0..160u64 {
            writer.process(grouped_point(i, 16));
        }
        writer.publish();
        let clone = reader.clone();
        assert_eq!(reader.epoch(), clone.epoch());
        assert_eq!(reader.f0_estimate(), clone.f0_estimate());
        // both can query; distinct draw sequences are fine either way
        assert!(reader.query().is_some());
        assert!(clone.query().is_some());
    }

    #[test]
    fn every_batch_cadence_skips_empty_batches() {
        // Regression (PR 5): an empty batch used to bump the epoch and
        // republish unchanged state — readers comparing epochs saw
        // phantom updates.
        let (mut writer, reader) = base()
            .publish_cadence(PublishCadence::EveryBatch)
            .build_split()
            .expect("valid");
        writer.process_batch(std::iter::empty::<Point>());
        assert_eq!(reader.epoch(), 0, "empty batch must not publish");
        writer.process_batch((0..30u64).map(|i| grouped_point(i, 3)));
        assert_eq!(reader.epoch(), 1);
        writer.process_batch(std::iter::empty::<Point>());
        assert_eq!(reader.epoch(), 1, "empty batch after a real one");
    }

    #[test]
    fn every_batch_cadence_bumps_exactly_once_per_batch() {
        // One batch = exactly one epoch bump, independent of batch size,
        // and `since_publish` resets on every publish path so a later
        // cadence switch starts counting from zero.
        let (mut writer, reader) = base()
            .publish_cadence(PublishCadence::EveryBatch)
            .build_split()
            .expect("valid");
        for (i, batch) in [1u64, 7, 100, 4096, 5000].into_iter().enumerate() {
            writer.process_batch((0..batch).map(|j| grouped_point(j, 7)));
            assert_eq!(reader.epoch(), i as u64 + 1, "batch of {batch} items");
        }
        // the counter was reset by the batch publish: switching to
        // EveryN(10) needs 10 fresh items, not 10 minus stale backlog
        writer.set_cadence(PublishCadence::EveryN(10));
        let epoch = reader.epoch();
        for i in 0..9u64 {
            writer.process(grouped_point(i, 7));
        }
        assert_eq!(reader.epoch(), epoch, "9 < 10 since the last publish");
        writer.process(grouped_point(9, 7));
        assert_eq!(reader.epoch(), epoch + 1);
    }

    #[test]
    fn unsharded_window_advance_expires_immediately_like_the_engine() {
        // Regression (PR 5): `RdsWriter::advance` silently dropped `now`
        // for the unsharded window backend. The expired entries stayed
        // live inside the sampler (matchable, and persisted by a
        // checkpoint) until the next publish. All four backends must
        // expire on advance + publish, and the unsharded backend's
        // checkpoint taken right after `advance` must already be clean.
        for shards in [1usize, 3] {
            let (mut writer, reader) = base()
                .window(Window::Time(10))
                .shards(shards)
                .publish_cadence(PublishCadence::Manual)
                .build_split()
                .expect("valid");
            for g in 0..6u64 {
                writer.process_item(StreamItem::new(
                    Point::new(vec![g as f64 * 10.0]),
                    Stamp::new(g, 0),
                ));
            }
            writer.advance(Stamp::new(6, 100));
            writer.publish();
            assert_eq!(reader.f0_estimate(), 0.0, "shards {shards}");
        }
        // white-box, unsharded: the state captured *right after* advance
        // (no publish in between) holds no entries
        let (mut writer, _reader) = base()
            .window(Window::Time(10))
            .publish_cadence(PublishCadence::Manual)
            .build_split()
            .expect("valid");
        for g in 0..6u64 {
            writer.process_item(StreamItem::new(
                Point::new(vec![g as f64 * 10.0]),
                Stamp::new(g, 0),
            ));
        }
        writer.advance(Stamp::new(6, 100));
        let chk = writer.checkpoint();
        let BackendState::Window(state) = &chk.backend else {
            panic!("unsharded window backend expected");
        };
        let live: usize = state.levels().iter().map(|l| l.entries().len()).sum();
        assert_eq!(live, 0, "advance must expire entries eagerly, not at publish");
    }

    #[test]
    fn checkpoint_restore_round_trips_for_all_backends() {
        for (window, shards) in [
            (Window::Infinite, 1),
            (Window::Infinite, 3),
            (Window::Sequence(1 << 12), 1),
            (Window::Sequence(1 << 12), 3),
        ] {
            let (mut writer, _) = base()
                .window(window)
                .shards(shards)
                .publish_cadence(PublishCadence::Manual)
                .build_split()
                .expect("valid");
            for i in 0..120u64 {
                writer.process(grouped_point(i, 12));
            }
            writer.publish();
            let chk = writer.checkpoint();
            assert_eq!(chk.seen(), 120);
            assert_eq!(chk.epoch(), 1);
            drop(writer);
            let wire = chk.to_container_json();
            let back = WriterCheckpoint::from_container_json(&wire).expect("verifies");
            let (mut writer, reader) = Rds::builder().restore(back).expect("restores");
            // warm snapshot: readers answer at the restored epoch
            assert_eq!(reader.epoch(), 1);
            assert_eq!(reader.seen(), 120);
            assert_eq!(reader.f0_estimate(), 12.0, "({window:?}, {shards})");
            writer.process(grouped_point(120, 12));
            assert_eq!(writer.publish(), 2, "epochs continue after the restore");
        }
    }

    #[test]
    fn restore_rejects_conflicting_builder_parameters() {
        let (mut writer, _) = base().build_split().expect("valid");
        for i in 0..50u64 {
            writer.process(grouped_point(i, 5));
        }
        let chk = writer.checkpoint();
        // unset parameters adopt the echo; conflicting ones are typed errors
        assert!(Rds::builder().restore(chk.clone()).is_ok());
        assert!(Rds::builder().dim(1).alpha(0.5).restore(chk.clone()).is_ok());
        for (what, result) in [
            ("dim", Rds::builder().dim(2).restore(chk.clone())),
            ("alpha", Rds::builder().alpha(0.75).restore(chk.clone())),
            ("window", Rds::builder().window(Window::Sequence(8)).restore(chk.clone())),
            ("shards", Rds::builder().shards(4).restore(chk.clone())),
            ("seed", Rds::builder().seed(999).restore(chk.clone())),
            ("k", Rds::builder().k(3).restore(chk.clone())),
            ("eps", Rds::builder().count_accuracy(0.5).restore(chk.clone())),
        ] {
            assert!(
                matches!(result, Err(RdsError::Checkpoint { .. })),
                "{what} mismatch must be a typed checkpoint error"
            );
        }
    }

    #[test]
    fn corrupt_containers_are_typed_errors_never_panics() {
        let (mut writer, _) = base().build_split().expect("valid");
        for i in 0..50u64 {
            writer.process(grouped_point(i, 5));
        }
        let good = writer.checkpoint().to_container_json();
        // truncation, garbage, wrong magic, future version, flipped payload
        let cases: Vec<String> = vec![
            good[..good.len() / 2].to_string(),
            "not json at all".to_string(),
            good.replacen("rds-checkpoint", "rds-checkpoant", 1),
            good.replacen("\"version\":1", "\"version\":999", 1),
            good.replacen("\"fed\":50", "\"fed\":51", 1),
            "{}".to_string(),
        ];
        for (i, text) in cases.iter().enumerate() {
            let result = WriterCheckpoint::from_container_json(text);
            assert!(
                matches!(result, Err(RdsError::Checkpoint { .. })),
                "case {i} must fail with a typed error, got {result:?}"
            );
        }
    }

    #[test]
    fn split_then_serve_from_threads() {
        let (mut writer, reader) = base()
            .publish_cadence(PublishCadence::Manual)
            .build_split()
            .expect("valid");
        for i in 0..200u64 {
            writer.process(grouped_point(i, 10));
        }
        writer.publish();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = reader.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(r.f0_estimate(), 10.0);
                        assert!(r.query().is_some());
                    }
                });
            }
        });
    }
}
