//! The `Rds` facade: one window-agnostic, shard-agnostic entry point,
//! split into a writer handle and lock-free reader handles.
//!
//! [`Rds::builder`] collects the problem parameters — dimension, the
//! near-duplicate threshold `alpha`, the window model, the shard count —
//! and assembles the backend: a single in-process sampler for
//! `shards == 1`, the sharded engine otherwise; the infinite-window
//! sampler for [`Window::Infinite`], the sliding-window hierarchy for a
//! bounded window.
//!
//! Two construction paths share that backend:
//!
//! * [`RdsBuilder::build_split`] returns the handle pair
//!   `(RdsWriter, RdsReader)`. The writer owns ingestion and decides when
//!   to [`publish`](RdsWriter::publish) an immutable, epoch-stamped
//!   [`Snapshot`]; readers are `Clone + Send + Sync`, answer every query
//!   with `&self` from the latest published snapshot, and never touch the
//!   ingest hot path — serve them from as many threads as you like.
//! * [`RdsBuilder::build`] returns the classic single-threaded [`Rds`],
//!   now a thin wrapper over the pair that publishes before every query.
//!
//! ```
//! use robust_distinct_sampling::{Rds, geometry::Point};
//!
//! let (mut writer, reader) = Rds::builder()
//!     .dim(1)
//!     .alpha(0.5)
//!     .seed(7)
//!     .build_split()
//!     .expect("valid configuration");
//! for i in 0..200u64 {
//!     writer.process(Point::new(vec![(i % 20) as f64 * 10.0]));
//! }
//! writer.publish();
//! // `reader` is Clone + Send + Sync and queries with `&self`
//! assert_eq!(reader.f0_estimate(), 20.0);
//! let sample = reader.query().expect("stream non-empty");
//! assert_eq!(sample.rep.dim(), 1);
//! ```

use rds_core::{
    DistinctSampler, GroupRecord, MergedSummary, RdsError, RobustL0Sampler, SamplerConfig,
    SamplerSummary, SlidingWindowSampler, WindowSummary, DEFAULT_KAPPA_B,
};
use rds_engine::ShardedEngine;
use rds_geometry::Point;
use rds_stream::{Stamp, StreamItem, Window};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Which concrete pipeline serves the writer. One variant per
/// (window, sharding) combination; all four speak [`DistinctSampler`] /
/// the engine's merged-summary API.
enum Backend {
    /// `shards == 1`, infinite window: Algorithm 1 in-process.
    Single(Box<RobustL0Sampler>),
    /// `shards == 1`, bounded window: Algorithm 3 in-process.
    Window(Box<SlidingWindowSampler>),
    /// `shards > 1`, infinite window.
    Engine(ShardedEngine<RobustL0Sampler>),
    /// `shards > 1`, bounded window.
    WindowEngine(ShardedEngine<SlidingWindowSampler>),
}

/// The summary a snapshot freezes: merged infinite-window state or pooled
/// window entries. Both are plain immutable data with `&self` queries.
#[derive(Clone, Debug)]
enum SnapshotSummary {
    Infinite(MergedSummary),
    Window(WindowSummary),
}

// The vendored serde derive handles only named-field structs; the enum
// maps to `{ "kind": ..., "summary": ... }` by hand.
impl Serialize for SnapshotSummary {
    fn to_value(&self) -> serde::Value {
        let (kind, inner) = match self {
            SnapshotSummary::Infinite(s) => ("infinite", s.to_value()),
            SnapshotSummary::Window(s) => ("window", s.to_value()),
        };
        serde::Value::Map(vec![
            ("kind".to_string(), serde::Value::Str(kind.to_string())),
            ("summary".to_string(), inner),
        ])
    }
}

impl Deserialize for SnapshotSummary {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let kind = match value.get("kind") {
            Some(serde::Value::Str(s)) => s.as_str(),
            _ => return Err(serde::DeError::missing("kind")),
        };
        let inner = value
            .get("summary")
            .ok_or_else(|| serde::DeError::missing("summary"))?;
        match kind {
            "infinite" => Ok(SnapshotSummary::Infinite(MergedSummary::from_value(inner)?)),
            "window" => Ok(SnapshotSummary::Window(WindowSummary::from_value(inner)?)),
            other => Err(serde::DeError::custom(format!(
                "unknown snapshot kind `{other}`"
            ))),
        }
    }
}

/// A frozen, epoch-stamped view of everything the writer had published:
/// immutable plain data, so any number of readers (or offline consumers —
/// it serializes, see `rds snapshot`) can query it concurrently with
/// `&self`.
///
/// Randomness is explicit: [`Snapshot::query_at`] / [`Snapshot::query_k_at`]
/// take a `draw` token that fully determines the draw. [`RdsReader`]
/// passes fresh tokens for you (one shared counter across all clones of
/// a pair).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Snapshot {
    epoch: u64,
    seen: u64,
    window: Window,
    summary: SnapshotSummary,
}

impl Snapshot {
    /// The publication number: 0 for the empty snapshot every handle pair
    /// starts with, then incremented by one per [`RdsWriter::publish`].
    /// Strictly monotone per writer — readers can detect staleness by
    /// comparing epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of items the writer had processed when this snapshot was
    /// published (all of them are covered by the snapshot).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The window model the handle pair was built with.
    pub fn window(&self) -> Window {
        self.window
    }

    /// The estimate of the number of distinct entities covered (live
    /// entities, for window snapshots).
    pub fn f0_estimate(&self) -> f64 {
        match &self.summary {
            SnapshotSummary::Infinite(s) => s.f0_estimate(),
            SnapshotSummary::Window(s) => SamplerSummary::f0_estimate(s),
        }
    }

    /// Draws one uniformly random sampled entity; the `draw` token
    /// supplies all randomness (same token, same result). `None` iff the
    /// snapshot covers no entity.
    pub fn query_at(&self, draw: u64) -> Option<GroupRecord> {
        match &self.summary {
            SnapshotSummary::Infinite(s) => s.query_record(draw),
            SnapshotSummary::Window(s) => SamplerSummary::query_record(s, draw),
        }
    }

    /// Draws up to `k` distinct sampled entities, deterministically in
    /// `draw`.
    pub fn query_k_at(&self, k: usize, draw: u64) -> Vec<GroupRecord> {
        match &self.summary {
            SnapshotSummary::Infinite(s) => s.query_k(k, draw),
            SnapshotSummary::Window(s) => SamplerSummary::query_k(s, k, draw),
        }
    }
}

/// The shared slot a writer publishes into and readers load from. The
/// lock is held only to swap/clone an `Arc` — nanoseconds — so readers
/// never block ingestion and the writer never waits on a query in
/// progress (queries run on the reader's own `Arc` after the load).
#[derive(Debug)]
struct SnapshotCell {
    current: RwLock<Arc<Snapshot>>,
}

impl SnapshotCell {
    fn new(initial: Snapshot) -> Self {
        Self {
            current: RwLock::new(Arc::new(initial)),
        }
    }

    fn load(&self) -> Arc<Snapshot> {
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn store(&self, snapshot: Snapshot) {
        *self
            .current
            .write()
            .unwrap_or_else(PoisonError::into_inner) = Arc::new(snapshot);
    }
}

/// Extracts the backend's current state as a frozen snapshot summary —
/// the one summary-extraction path shared by [`RdsWriter::publish`] and
/// the epoch-0 snapshot of [`RdsBuilder::build_split`]. Window backends
/// are advanced to `now` first so quiet streams still expire; engine
/// backends flush so the snapshot covers every ingested item.
fn freeze(backend: &mut Backend, now: Stamp) -> SnapshotSummary {
    match backend {
        Backend::Single(s) => SnapshotSummary::Infinite(DistinctSampler::summary(s.as_ref())),
        Backend::Window(s) => {
            DistinctSampler::advance(s.as_mut(), now);
            SnapshotSummary::Window(DistinctSampler::summary(s.as_ref()))
        }
        Backend::Engine(e) => {
            e.flush();
            SnapshotSummary::Infinite(e.snapshot())
        }
        Backend::WindowEngine(e) => {
            e.flush();
            SnapshotSummary::Window(e.snapshot())
        }
    }
}

/// When the writer publishes a fresh [`Snapshot`] on its own, besides
/// explicit [`RdsWriter::publish`] calls.
///
/// Publication costs one summary extraction (and, sharded, one flush +
/// per-shard snapshot round trip), so the cadence trades reader freshness
/// against ingest throughput: `EveryN(4096)` (the default) keeps readers
/// at most 4096 items behind at ~0.1% ingest overhead on typical
/// configurations; `Manual` gives latency-insensitive pipelines full
/// control; `EveryBatch` pins freshness to [`RdsWriter::process_batch`]
/// boundaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PublishCadence {
    /// Only explicit [`RdsWriter::publish`] calls publish.
    Manual,
    /// Publish after every `n` processed items (and on `publish`).
    EveryN(u64),
    /// Publish at the end of every [`RdsWriter::process_batch`] call
    /// (and on `publish`).
    EveryBatch,
}

/// The default automatic publication interval (items).
pub const DEFAULT_PUBLISH_EVERY: u64 = 4096;

/// The ingestion half of a split handle pair: owns the backend, feeds it,
/// and publishes immutable [`Snapshot`]s for the [`RdsReader`]s.
///
/// The writer is deliberately not `Clone`: one thread ingests. Everything
/// the serving path needs lives in the reader.
pub struct RdsWriter {
    backend: Backend,
    window: Window,
    shards: usize,
    fed: u64,
    last_stamp: Stamp,
    epoch: u64,
    since_publish: u64,
    cadence: PublishCadence,
    cell: Arc<SnapshotCell>,
}

impl std::fmt::Debug for RdsWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RdsWriter")
            .field("window", &self.window)
            .field("shards", &self.shards)
            .field("fed", &self.fed)
            .field("epoch", &self.epoch)
            .field("cadence", &self.cadence)
            .finish_non_exhaustive()
    }
}

impl RdsWriter {
    /// Feeds one point, stamped with the arrival index (sequence number
    /// == timestamp). Use [`Self::process_item`] for explicit timestamps
    /// (time-based windows).
    pub fn process(&mut self, p: Point) {
        let stamp = Stamp::at(self.fed);
        self.process_item(StreamItem::new(p, stamp));
    }

    /// Feeds one stamped stream item. Stamps must be non-decreasing.
    pub fn process_item(&mut self, item: StreamItem) {
        self.fed += 1;
        self.last_stamp = self.last_stamp.max(item.stamp);
        match &mut self.backend {
            Backend::Single(s) => {
                s.process(&item.point);
            }
            Backend::Window(s) => {
                s.process(&item);
            }
            Backend::Engine(e) => e.ingest_item(item),
            Backend::WindowEngine(e) => e.ingest_item(item),
        }
        self.since_publish += 1;
        if let PublishCadence::EveryN(n) = self.cadence {
            if self.since_publish >= n.max(1) {
                self.publish();
            }
        }
    }

    /// Feeds every point of an iterator (stamped by arrival index), then
    /// publishes if the cadence is [`PublishCadence::EveryBatch`].
    pub fn process_batch<I>(&mut self, points: I)
    where
        I: IntoIterator<Item = Point>,
    {
        for p in points {
            self.process(p);
        }
        if self.cadence == PublishCadence::EveryBatch {
            self.publish();
        }
    }

    /// Advances the clock to `now` without feeding a point: the next
    /// published snapshot expires window entries older than `now` (a
    /// no-op for the infinite window). Stamps must be non-decreasing; an
    /// older `now` is ignored.
    pub fn advance(&mut self, now: Stamp) {
        self.last_stamp = self.last_stamp.max(now);
        if let Backend::Engine(e) = &mut self.backend {
            e.advance(now);
        } else if let Backend::WindowEngine(e) = &mut self.backend {
            e.advance(now);
        }
    }

    /// Publishes a fresh [`Snapshot`] covering every processed item and
    /// returns its epoch. Readers see it on their next query; snapshots
    /// they already hold stay valid (they are immutable).
    ///
    /// This is the only point where the writer does read-side work:
    /// sharded backends flush their batch buffers and merge the per-shard
    /// summaries here, single-process backends clone their candidate
    /// sets.
    pub fn publish(&mut self) -> u64 {
        let summary = freeze(&mut self.backend, self.last_stamp);
        self.epoch += 1;
        self.since_publish = 0;
        self.cell.store(Snapshot {
            epoch: self.epoch,
            seen: self.fed,
            window: self.window,
            summary,
        });
        self.epoch
    }

    /// Number of items fed through this writer (published or not).
    pub fn seen(&self) -> u64 {
        self.fed
    }

    /// The epoch of the latest published snapshot (0 = only the initial
    /// empty snapshot exists).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The window model in force.
    pub fn window(&self) -> Window {
        self.window
    }

    /// The shard count (1 = in-process sampler).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The publication cadence in force.
    pub fn cadence(&self) -> PublishCadence {
        self.cadence
    }

    /// Changes the publication cadence mid-stream.
    pub fn set_cadence(&mut self, cadence: PublishCadence) {
        self.cadence = cadence;
    }
}

/// The serving half of a split handle pair: answers `query`/`query_k`/
/// `f0_estimate`/`seen` from the latest published [`Snapshot`] with
/// `&self`, never touching the ingest path.
///
/// `RdsReader` is `Clone + Send + Sync`: clone it into every serving
/// thread. All clones of a pair share one draw counter, so every query —
/// from any thread — consumes a fresh token and no two handles ever
/// replay each other's draws; the only shared mutable state is that
/// counter bump and the snapshot slot's brief `Arc` swap. (To *replay* a
/// draw deliberately, use [`Snapshot::query_at`] with an explicit
/// token.)
#[derive(Clone, Debug)]
pub struct RdsReader {
    cell: Arc<SnapshotCell>,
    draws: Arc<AtomicU64>,
}

impl RdsReader {
    fn next_draw(&self) -> u64 {
        self.draws.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The latest published snapshot. The `Arc` stays valid (and
    /// immutable) however long the caller holds it; later publications do
    /// not disturb it.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.cell.load()
    }

    /// Draws one uniformly random sampled entity from the latest
    /// snapshot. `None` iff nothing was published yet (or nothing is live
    /// in the window).
    pub fn query(&self) -> Option<GroupRecord> {
        self.snapshot().query_at(self.next_draw())
    }

    /// Draws up to `k` distinct sampled entities from the latest
    /// snapshot.
    pub fn query_k(&self, k: usize) -> Vec<GroupRecord> {
        self.snapshot().query_k_at(k, self.next_draw())
    }

    /// The estimate of the number of distinct entities in the latest
    /// snapshot (live entities, for window backends).
    pub fn f0_estimate(&self) -> f64 {
        self.snapshot().f0_estimate()
    }

    /// Number of items covered by the latest snapshot.
    pub fn seen(&self) -> u64 {
        self.snapshot().seen()
    }

    /// The epoch of the latest snapshot — monotonically non-decreasing
    /// across calls on any reader of the pair.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch()
    }
}

/// A unified robust-distinct-sampling handle over any window model and
/// shard count — the single-threaded convenience wrapper over the
/// [`RdsWriter`]/[`RdsReader`] pair ([`Rds::builder`] + `build_split`
/// for concurrent serving). Queries publish implicitly, so results always
/// reflect every processed item.
pub struct Rds {
    writer: RdsWriter,
    reader: RdsReader,
}

/// Fallible builder for [`Rds`] and the split handle pair; `dim` and
/// `alpha` are required, all other parameters have the library defaults.
/// Validation happens in [`Self::build`] / [`Self::build_split`] and
/// surfaces as [`RdsError`] — no panics.
#[derive(Clone, Debug)]
pub struct RdsBuilder {
    dim: Option<usize>,
    alpha: Option<f64>,
    window: Window,
    shards: usize,
    seed: u64,
    expected_len: u64,
    k: usize,
    kappa0: Option<f64>,
    eps: Option<f64>,
    cadence: PublishCadence,
}

impl Default for RdsBuilder {
    fn default() -> Self {
        Self {
            dim: None,
            alpha: None,
            window: Window::Infinite,
            shards: 1,
            seed: 0xC0FF_EE00,
            expected_len: 1 << 20,
            k: 1,
            kappa0: None,
            eps: None,
            cadence: PublishCadence::EveryN(DEFAULT_PUBLISH_EVERY),
        }
    }
}

impl RdsBuilder {
    /// Sets the ambient dimension `d` (required).
    pub fn dim(mut self, dim: usize) -> Self {
        self.dim = Some(dim);
        self
    }

    /// Sets the near-duplicate distance threshold `alpha` (required).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Restricts queries to a sliding window ([`Window::Sequence`] /
    /// [`Window::Time`]); [`Window::Infinite`] (the default) covers the
    /// whole stream.
    pub fn window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// Shards ingestion across `n` worker threads (default 1 = a plain
    /// in-process sampler). Works for every window model.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Sets the PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the expected stream length `m` (an estimate is fine).
    pub fn expected_len(mut self, m: u64) -> Self {
        self.expected_len = m;
        self
    }

    /// Sets the number of distinct samples per query (scales the accept
    /// thresholds, Section 2.3).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Overrides the threshold constant `kappa_0`.
    pub fn kappa0(mut self, kappa0: f64) -> Self {
        self.kappa0 = Some(kappa0);
        self
    }

    /// Tunes the handle for F0 estimation at relative error `eps`
    /// (Section 5): the accept-set threshold becomes
    /// `ceil(kappa_B / eps^2)` instead of `kappa_0 k log m`.
    pub fn count_accuracy(mut self, eps: f64) -> Self {
        self.eps = Some(eps);
        self
    }

    /// Sets the snapshot publication cadence of the split pair (default
    /// [`PublishCadence::EveryN`] with [`DEFAULT_PUBLISH_EVERY`]).
    pub fn publish_cadence(mut self, cadence: PublishCadence) -> Self {
        self.cadence = cadence;
        self
    }

    /// Shorthand for `publish_cadence(PublishCadence::EveryN(n))`.
    pub fn publish_every(self, n: u64) -> Self {
        self.publish_cadence(PublishCadence::EveryN(n))
    }

    /// Validates every parameter, assembles the backend and splits it
    /// into the ingestion and serving handles. The pair starts with an
    /// empty epoch-0 snapshot, so readers are usable (if empty-handed)
    /// before the first publication.
    ///
    /// # Errors
    ///
    /// Any [`RdsError`]: missing/invalid `dim` or `alpha`, a bad window,
    /// shard count, `k`, `kappa0`, or `eps` — never a panic.
    pub fn build_split(self) -> Result<(RdsWriter, RdsReader), RdsError> {
        let dim = self.dim.unwrap_or(0); // 0 is rejected by validation below
        let alpha = self.alpha.unwrap_or(f64::NAN); // NaN likewise
        let mut b = SamplerConfig::builder(dim, alpha)
            .seed(self.seed)
            .expected_len(self.expected_len)
            .k(self.k);
        if let Some(kappa0) = self.kappa0 {
            b = b.kappa0(kappa0);
        }
        let cfg = b.build()?;
        let threshold = match self.eps {
            Some(eps) => {
                if !(eps > 0.0 && eps <= 1.0) {
                    return Err(RdsError::InvalidEps { eps });
                }
                (DEFAULT_KAPPA_B / (eps * eps)).ceil().max(1.0) as usize
            }
            None => cfg.threshold(),
        };
        if self.shards == 0 {
            return Err(RdsError::InvalidShards);
        }
        let mut backend = match (self.window, self.shards) {
            (Window::Infinite, 1) => {
                Backend::Single(Box::new(RobustL0Sampler::try_with_threshold(cfg, threshold)?))
            }
            (Window::Infinite, n) => {
                Backend::Engine(ShardedEngine::try_with_threshold(cfg, n, threshold)?)
            }
            (window, 1) => Backend::Window(Box::new(SlidingWindowSampler::try_with_threshold(
                cfg, window, threshold,
            )?)),
            (window, n) => Backend::WindowEngine(
                ShardedEngine::try_sliding_window_with_threshold(cfg, window, n, threshold)?,
            ),
        };
        // The epoch-0 snapshot: empty but well-formed, so readers work
        // (and report `seen() == 0`) before the first publication.
        let empty = freeze(&mut backend, Stamp::at(0));
        let writer = RdsWriter {
            backend,
            window: self.window,
            shards: self.shards,
            fed: 0,
            last_stamp: Stamp::at(0),
            epoch: 0,
            since_publish: 0,
            cadence: self.cadence,
            cell: Arc::new(SnapshotCell::new(Snapshot {
                epoch: 0,
                seen: 0,
                window: self.window,
                summary: empty,
            })),
        };
        let reader = RdsReader {
            cell: Arc::clone(&writer.cell),
            draws: Arc::new(AtomicU64::new(0)),
        };
        Ok((writer, reader))
    }

    /// Validates every parameter and assembles the single-threaded
    /// [`Rds`] wrapper over the split pair. The cadence is forced to
    /// [`PublishCadence::Manual`]: `Rds` publishes before every query
    /// anyway, so automatic mid-stream publications would be pure
    /// overhead nothing ever reads.
    ///
    /// # Errors
    ///
    /// As [`Self::build_split`].
    pub fn build(self) -> Result<Rds, RdsError> {
        let (writer, reader) = self
            .publish_cadence(PublishCadence::Manual)
            .build_split()?;
        Ok(Rds { writer, reader })
    }
}

impl Rds {
    /// Starts a builder with the library defaults.
    pub fn builder() -> RdsBuilder {
        RdsBuilder::default()
    }

    /// Feeds one point, stamped with the arrival index (sequence number
    /// == timestamp). Use [`Self::process_item`] for explicit timestamps
    /// (time-based windows).
    pub fn process(&mut self, p: Point) {
        self.writer.process(p);
    }

    /// Feeds one stamped stream item. Stamps must be non-decreasing.
    pub fn process_item(&mut self, item: StreamItem) {
        self.writer.process_item(item);
    }

    /// Draws one uniformly random sampled entity, owned. `None` iff
    /// nothing was processed (or nothing is live in the window).
    /// Publishes first, so the result covers every processed item.
    pub fn query(&mut self) -> Option<GroupRecord> {
        self.writer.publish();
        self.reader.query()
    }

    /// Draws up to `k` distinct sampled entities, owned.
    pub fn query_k(&mut self, k: usize) -> Vec<GroupRecord> {
        self.writer.publish();
        self.reader.query_k(k)
    }

    /// The estimate of the number of distinct entities (in the window,
    /// for window backends).
    pub fn f0_estimate(&mut self) -> f64 {
        self.writer.publish();
        self.reader.f0_estimate()
    }

    /// Publishes and returns the frozen [`Snapshot`] covering every
    /// processed item (e.g. for `rds snapshot save`).
    pub fn snapshot(&mut self) -> Arc<Snapshot> {
        self.writer.publish();
        self.reader.snapshot()
    }

    /// Number of items fed through this handle.
    pub fn seen(&self) -> u64 {
        self.writer.seen()
    }

    /// The window model in force.
    pub fn window(&self) -> Window {
        self.writer.window()
    }

    /// The shard count (1 = in-process sampler).
    pub fn shards(&self) -> usize {
        self.writer.shards()
    }

    /// Splits the handle into its ingestion and serving halves — the
    /// migration path from single-threaded code to concurrent serving.
    pub fn split(self) -> (RdsWriter, RdsReader) {
        (self.writer, self.reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grouped_point(i: u64, n_groups: u64) -> Point {
        Point::new(vec![(i % n_groups) as f64 * 10.0 + 0.01 * ((i / n_groups) % 3) as f64])
    }

    fn base() -> RdsBuilder {
        Rds::builder().dim(1).alpha(0.5).seed(5).expected_len(2048)
    }

    #[test]
    fn all_four_backends_agree_on_exact_counts() {
        for (window, shards) in [
            (Window::Infinite, 1),
            (Window::Infinite, 4),
            (Window::Sequence(1 << 14), 1),
            (Window::Sequence(1 << 14), 4),
        ] {
            let mut rds = base().window(window).shards(shards).build().expect("valid");
            for i in 0..360u64 {
                rds.process(grouped_point(i, 18));
            }
            assert_eq!(
                rds.f0_estimate(),
                18.0,
                "backend (window {window:?}, shards {shards}) missed the count"
            );
            let q = rds.query().expect("non-empty");
            assert!(q.count > 0);
            assert_eq!(rds.seen(), 360);
            let picks = rds.query_k(3);
            assert_eq!(picks.len(), 3);
            for a in 0..picks.len() {
                for b in (a + 1)..picks.len() {
                    assert!(!picks[a].rep.within(&picks[b].rep, 0.5));
                }
            }
        }
    }

    #[test]
    fn windowed_backends_expire_old_entities() {
        for shards in [1usize, 3] {
            let mut rds = base()
                .window(Window::Sequence(32))
                .shards(shards)
                .build()
                .expect("valid");
            for i in 0..256u64 {
                rds.process(grouped_point(i, 16));
            }
            assert_eq!(rds.f0_estimate(), 16.0);
            for _ in 0..64u64 {
                rds.process(Point::new(vec![0.0]));
            }
            assert_eq!(rds.f0_estimate(), 1.0, "shards {shards}: window did not slide");
        }
    }

    #[test]
    fn time_based_window_through_the_facade() {
        let mut rds = base().window(Window::Time(10)).shards(2).build().expect("valid");
        for g in 0..5u64 {
            rds.process_item(StreamItem::new(
                Point::new(vec![g as f64 * 10.0]),
                Stamp::new(g, 0),
            ));
        }
        assert_eq!(rds.f0_estimate(), 5.0);
        rds.process_item(StreamItem::new(Point::new(vec![990.0]), Stamp::new(5, 30)));
        assert_eq!(rds.f0_estimate(), 1.0);
    }

    #[test]
    fn count_accuracy_controls_the_threshold() {
        // eps = 1 → threshold 16: 12 groups stay exact
        let mut rds = base().count_accuracy(1.0).build().expect("valid");
        for i in 0..120u64 {
            rds.process(grouped_point(i, 12));
        }
        assert_eq!(rds.f0_estimate(), 12.0);
    }

    #[test]
    fn builder_surfaces_typed_errors() {
        assert!(matches!(
            Rds::builder().alpha(0.5).build(),
            Err(RdsError::InvalidDimension { .. })
        ));
        assert!(matches!(
            Rds::builder().dim(2).build(),
            Err(RdsError::InvalidAlpha { .. })
        ));
        assert!(matches!(
            base().shards(0).build_split(),
            Err(RdsError::InvalidShards)
        ));
        assert!(matches!(
            base().count_accuracy(0.0).build(),
            Err(RdsError::InvalidEps { .. })
        ));
        assert!(matches!(
            base().window(Window::Sequence(0)).build(),
            Err(RdsError::EmptyWindow)
        ));
        assert!(matches!(
            base().k(0).build(),
            Err(RdsError::InvalidK)
        ));
    }

    #[test]
    fn backend_swap_needs_no_signature_churn() {
        // The PR 3 contract still holds: identical calling code against
        // single and sharded backends.
        let run = |shards: usize| -> (f64, Option<GroupRecord>) {
            let mut rds = base().shards(shards).build().expect("valid");
            for i in 0..100u64 {
                rds.process(grouped_point(i, 10));
            }
            (rds.f0_estimate(), rds.query())
        };
        let (f0_single, q_single) = run(1);
        let (f0_sharded, q_sharded) = run(4);
        assert_eq!(f0_single, f0_sharded);
        assert!(q_single.is_some() && q_sharded.is_some());
    }

    #[test]
    fn reader_handles_are_send_sync_and_clone() {
        fn assert_bounds<T: Clone + Send + Sync + 'static>() {}
        assert_bounds::<RdsReader>();
        fn assert_send<T: Send>() {}
        assert_send::<RdsWriter>();
        assert_send::<Snapshot>();
    }

    #[test]
    fn readers_see_only_published_state() {
        let (mut writer, reader) = base()
            .publish_cadence(PublishCadence::Manual)
            .build_split()
            .expect("valid");
        // epoch 0: the initial empty snapshot answers (with nothing)
        assert_eq!(reader.epoch(), 0);
        assert_eq!(reader.seen(), 0);
        assert!(reader.query().is_none());
        for i in 0..100u64 {
            writer.process(grouped_point(i, 10));
        }
        // manual cadence: nothing published yet
        assert_eq!(reader.epoch(), 0);
        assert_eq!(reader.f0_estimate(), 0.0);
        let epoch = writer.publish();
        assert_eq!(epoch, 1);
        assert_eq!(reader.epoch(), 1);
        assert_eq!(reader.seen(), 100);
        assert_eq!(reader.f0_estimate(), 10.0);
        assert!(reader.query().is_some());
    }

    #[test]
    fn old_snapshots_stay_valid_after_publications() {
        let (mut writer, reader) = base()
            .publish_cadence(PublishCadence::Manual)
            .build_split()
            .expect("valid");
        for i in 0..50u64 {
            writer.process(grouped_point(i, 5));
        }
        writer.publish();
        let frozen = reader.snapshot();
        for i in 50..200u64 {
            writer.process(grouped_point(i, 20));
        }
        writer.publish();
        // the held Arc is immutable: still the epoch-1 view
        assert_eq!(frozen.epoch(), 1);
        assert_eq!(frozen.seen(), 50);
        assert_eq!(frozen.f0_estimate(), 5.0);
        // the live reader moved on
        assert_eq!(reader.epoch(), 2);
        assert_eq!(reader.f0_estimate(), 20.0);
    }

    #[test]
    fn every_n_cadence_publishes_automatically() {
        let (mut writer, reader) = base().publish_every(64).build_split().expect("valid");
        for i in 0..63u64 {
            writer.process(grouped_point(i, 7));
        }
        assert_eq!(reader.epoch(), 0, "63 < 64: not yet published");
        writer.process(grouped_point(63, 7));
        assert_eq!(reader.epoch(), 1, "64th item triggers the publication");
        assert_eq!(reader.seen(), 64);
        assert_eq!(reader.f0_estimate(), 7.0);
    }

    #[test]
    fn every_batch_cadence_publishes_per_batch() {
        let (mut writer, reader) = base()
            .publish_cadence(PublishCadence::EveryBatch)
            .build_split()
            .expect("valid");
        writer.process_batch((0..30u64).map(|i| grouped_point(i, 3)));
        assert_eq!(reader.epoch(), 1);
        assert_eq!(reader.seen(), 30);
        writer.process_batch((0..10u64).map(|i| grouped_point(i, 3)));
        assert_eq!(reader.epoch(), 2);
        assert_eq!(reader.seen(), 40);
    }

    #[test]
    fn split_works_for_all_four_backends() {
        for (window, shards) in [
            (Window::Infinite, 1),
            (Window::Infinite, 3),
            (Window::Sequence(1 << 12), 1),
            (Window::Sequence(1 << 12), 3),
        ] {
            let (mut writer, reader) = base()
                .window(window)
                .shards(shards)
                .publish_cadence(PublishCadence::Manual)
                .build_split()
                .expect("valid");
            for i in 0..240u64 {
                writer.process(grouped_point(i, 12));
            }
            writer.publish();
            assert_eq!(
                reader.f0_estimate(),
                12.0,
                "backend (window {window:?}, shards {shards})"
            );
            let picks = reader.query_k(4);
            assert_eq!(picks.len(), 4);
        }
    }

    #[test]
    fn writer_advance_expires_time_windows() {
        let (mut writer, reader) = base()
            .window(Window::Time(10))
            .shards(2)
            .publish_cadence(PublishCadence::Manual)
            .build_split()
            .expect("valid");
        for g in 0..6u64 {
            writer.process_item(StreamItem::new(
                Point::new(vec![g as f64 * 10.0]),
                Stamp::new(g, 0),
            ));
        }
        writer.publish();
        assert_eq!(reader.f0_estimate(), 6.0);
        // the clock moves with no new items: everything expires
        writer.advance(Stamp::new(6, 100));
        writer.publish();
        assert_eq!(reader.f0_estimate(), 0.0);
    }

    #[test]
    fn advance_is_not_rewound_by_later_low_stamped_items() {
        // Regression: after `advance` moves the clock forward, an item
        // whose auto-stamp lags behind must not roll the engine clock
        // back and resurrect expired entries — sharded and unsharded
        // backends must agree.
        for shards in [1usize, 3] {
            let (mut writer, reader) = base()
                .window(Window::Time(10))
                .shards(shards)
                .publish_cadence(PublishCadence::Manual)
                .build_split()
                .expect("valid");
            for g in 0..4u64 {
                writer.process_item(StreamItem::new(
                    Point::new(vec![g as f64 * 10.0]),
                    Stamp::new(g, 0),
                ));
            }
            writer.advance(Stamp::new(4, 100));
            // auto-stamped: time == arrival index (5), far behind 100
            writer.process(Point::new(vec![990.0]));
            writer.publish();
            assert_eq!(
                reader.f0_estimate(),
                0.0,
                "shards {shards}: the advanced clock must win"
            );
        }
    }

    #[test]
    fn cloned_readers_never_replay_each_others_draws() {
        // Clones share the draw counter: with >1 entity in the snapshot,
        // two clones issuing many queries must not produce identical
        // sequences (they would under per-clone counters, since the RNG
        // is a pure function of seed + token).
        let (mut writer, reader) = base().build_split().expect("valid");
        for i in 0..160u64 {
            writer.process(grouped_point(i, 16));
        }
        writer.publish();
        let a = reader.clone();
        let b = reader.clone();
        let seq_a: Vec<_> = (0..12).map(|_| a.query().expect("non-empty").rep).collect();
        let seq_b: Vec<_> = (0..12).map(|_| b.query().expect("non-empty").rep).collect();
        assert_ne!(seq_a, seq_b, "cloned readers replayed the same draws");
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        for window in [Window::Infinite, Window::Sequence(1 << 12)] {
            let (mut writer, reader) = base()
                .window(window)
                .publish_cadence(PublishCadence::Manual)
                .build_split()
                .expect("valid");
            for i in 0..90u64 {
                writer.process(grouped_point(i, 9));
            }
            writer.publish();
            let snap = reader.snapshot();
            let wire = serde_json::to_string(&*snap).expect("serializes");
            let back: Snapshot = serde_json::from_str(&wire).expect("deserializes");
            assert_eq!(back.epoch(), snap.epoch());
            assert_eq!(back.seen(), snap.seen());
            assert_eq!(back.window(), window);
            assert_eq!(back.f0_estimate(), snap.f0_estimate());
            // same draw token, same sample — before and after the wire
            assert_eq!(
                back.query_at(7).map(|r| r.rep),
                snap.query_at(7).map(|r| r.rep)
            );
        }
    }

    #[test]
    fn cloned_readers_draw_independently_but_share_the_snapshot() {
        let (mut writer, reader) = base().build_split().expect("valid");
        for i in 0..160u64 {
            writer.process(grouped_point(i, 16));
        }
        writer.publish();
        let clone = reader.clone();
        assert_eq!(reader.epoch(), clone.epoch());
        assert_eq!(reader.f0_estimate(), clone.f0_estimate());
        // both can query; distinct draw sequences are fine either way
        assert!(reader.query().is_some());
        assert!(clone.query().is_some());
    }

    #[test]
    fn split_then_serve_from_threads() {
        let (mut writer, reader) = base()
            .publish_cadence(PublishCadence::Manual)
            .build_split()
            .expect("valid");
        for i in 0..200u64 {
            writer.process(grouped_point(i, 10));
        }
        writer.publish();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = reader.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(r.f0_estimate(), 10.0);
                        assert!(r.query().is_some());
                    }
                });
            }
        });
    }
}
