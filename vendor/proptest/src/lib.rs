//! Offline vendored shim for the `proptest` API surface this workspace
//! uses.
//!
//! Supports the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, range strategies over the primitive
//! numeric types, [`collection::vec`] with fixed or ranged lengths, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the generated inputs' case number, and cases are deterministic per test
//! (the RNG is seeded from the test name), so failures are reproducible.

#![warn(missing_docs)]

use std::ops::Range;

/// Re-exports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Per-test configuration: how many random cases to run.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic per-test random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// Creates a runner whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values for one [`proptest!`] parameter.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + runner.below(span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, runner: &mut TestRunner) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + runner.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, runner: &mut TestRunner) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (runner.unit_f64() as f32) * (self.end - self.start)
    }
}

/// A length specification for [`collection::vec`]: fixed or ranged.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi: r.end }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRunner};

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + runner.below(span) as usize;
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Property-failure assertion; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Property-failure equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Defines `#[test]` functions that run their body over many generated
/// inputs.
///
/// Inside a test module each property carries its usual `#[test]`
/// attribute; here the generated function is invoked directly so the
/// example exercises the macro:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg [$cfg] $($rest)*);
    };
    (@cfg [$cfg:expr]
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let ($($arg,)*) = (
                    $($crate::Strategy::generate(&($strat), &mut runner),)*
                );
                let run = || -> () { $body };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed",
                        case + 1, config.cases, stringify!($name)
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@cfg [$cfg] $($rest)*);
    };
    (@cfg [$cfg:expr]) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg [$crate::ProptestConfig::default()] $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRunner::deterministic("x");
        let mut b = crate::TestRunner::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respected(a in 3u64..17, x in -2.0f64..2.0, v in prop::collection::vec(0u8..4, 1..9)) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 4));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(n in 0u32..10) {
            prop_assert!(n < 10);
        }
    }
}
