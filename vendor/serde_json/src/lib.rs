//! Offline vendored shim for the `serde_json` API surface this workspace
//! uses: [`to_string`], [`to_string_pretty`], [`to_vec`], [`from_str`],
//! [`from_slice`], all routed through the vendored `serde` [`Value`] tree.

#![warn(missing_docs)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Serialization or parse error.
pub type Error = DeError;

// ------------------------------------------------------------------ writing

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{}` on f64 is shortest-round-trip, but prints integral values
        // without a decimal point; keep the float-ness visible like
        // serde_json does.
        let s = format!("{x}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Real serde_json refuses non-finite floats; emitting null keeps
        // experiment dumps usable instead of failing the whole figure.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_block(out, indent, '[', ']', items.len(), |out, i, ind| {
            write_value(out, &items[i], ind)
        }),
        Value::Map(entries) => write_block(out, indent, '{', '}', entries.len(), |out, i, ind| {
            write_escaped(out, &entries[i].0);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, &entries[i].1, ind);
        }),
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        DeError::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek().ok_or_else(|| self.err("unexpected end of input"))? {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() {
            return Err(self.err("expected a value"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parses a JSON string into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    T::from_value(&value)
}

/// Parses JSON bytes into a `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| DeError::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let v: Vec<f64> = from_str("[1.5, -2.0, 3.0]").unwrap();
        assert_eq!(v, vec![1.5, -2.0, 3.0]);
        let n: i64 = from_str("-42").unwrap();
        assert_eq!(n, -42);
        let b: bool = from_str("true").unwrap();
        assert!(b);
        let s: String = from_str("\"hi\\nthere\"").unwrap();
        assert_eq!(s, "hi\nthere");
    }

    #[test]
    fn floats_keep_their_point() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn value_roundtrip() {
        let v = Value::Map(vec![
            ("xs".into(), Value::Seq(vec![Value::I64(1), Value::F64(2.5)])),
            ("name".into(), Value::Str("a \"b\" c".into())),
            ("none".into(), Value::Null),
        ]);
        let mut out = String::new();
        super::write_value(&mut out, &v, None);
        let back = Parser::new(&out).parse_value().unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v: Vec<Vec<u64>> = vec![vec![1, 2], vec![], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u64>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<i64>("1 2").is_err());
    }

    #[test]
    fn unicode_roundtrip() {
        let s = "héllo — ωorld 🦀";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
