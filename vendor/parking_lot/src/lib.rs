//! Offline vendored shim for the `parking_lot` API surface this workspace
//! uses: a [`Mutex`] whose `lock` returns the guard directly (no poison
//! `Result`), backed by `std::sync::Mutex`, plus the lock-free
//! [`AtomicArc`] swap cell backing the facade's snapshot publication.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion primitive with `parking_lot`'s panic-transparent API.
///
/// Unlike `std::sync::Mutex`, [`Mutex::lock`] does not return a poison
/// `Result`: if a holder panicked, the data is handed over as-is.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// A lock-free shared-pointer cell: readers obtain the current
/// [`Arc`] with a handful of atomic operations and **never block**, not
/// even while a writer is mid-[`store`](AtomicArc::store); the writer
/// publishes by swapping a raw pointer and never acquires a lock.
///
/// # Protocol
///
/// Reclamation is epoch-parity pin counting. The cell keeps the current
/// value as a raw `Arc` pointer plus a monotone epoch counter and two
/// pin counters indexed by epoch parity:
///
/// * A **reader** pins the current parity, re-checks the epoch (retrying
///   if a writer flipped it mid-pin), loads the pointer, bumps the
///   `Arc`'s strong count to take its own reference, and unpins.
/// * The **writer** swaps the pointer, flips the epoch (so later readers
///   pin the other parity), then waits for the *old* parity's pin count
///   to drain before dropping the previous `Arc`. It only ever waits for
///   readers already inside their constant-time critical section — a
///   bounded wait that cannot be extended by new readers.
///
/// The wait-to-drop runs on the writer; readers are oblivious to it.
/// Stores are designed for a single publisher (the split facade's writer
/// handle); concurrent `store` calls must be serialized by the caller.
pub struct AtomicArc<T> {
    ptr: AtomicPtr<T>,
    epoch: AtomicUsize,
    pins: [AtomicUsize; 2],
}

impl<T> AtomicArc<T> {
    /// Wraps `value` in a new cell.
    pub fn new(value: Arc<T>) -> Self {
        Self {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            epoch: AtomicUsize::new(0),
            pins: [AtomicUsize::new(0), AtomicUsize::new(0)],
        }
    }

    /// Returns the current value — a single pointer load bracketed by a
    /// pin/unpin pair; never blocks, never takes a lock.
    pub fn load(&self) -> Arc<T> {
        loop {
            let parity = self.epoch.load(Ordering::SeqCst) & 1;
            self.pins[parity].fetch_add(1, Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) & 1 != parity {
                // A writer flipped the epoch between the two loads; our
                // pin lands on a parity it may already have drained.
                // Retry on the new parity.
                self.pins[parity].fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let raw = self.ptr.load(Ordering::SeqCst);
            // SAFETY: `raw` came from `Arc::into_raw` and is kept alive
            // while we hold the pin — a writer that swapped it out waits
            // for this parity's pin count to drain before dropping it.
            let arc = unsafe {
                Arc::increment_strong_count(raw);
                Arc::from_raw(raw)
            };
            self.pins[parity].fetch_sub(1, Ordering::SeqCst);
            return arc;
        }
    }

    /// Publishes `value` and drops the cell's reference to the previous
    /// value once in-flight readers of it have finished. Lock-free: the
    /// publication itself is one atomic swap (readers observe the new
    /// value immediately); only the cleanup spin-waits, and only for
    /// readers already mid-`load`.
    pub fn store(&self, value: Arc<T>) {
        let fresh = Arc::into_raw(value).cast_mut();
        let old = self.ptr.swap(fresh, Ordering::SeqCst);
        // Flip the parity: readers arriving from here on pin the other
        // counter and can only observe `fresh`.
        let old_parity = self.epoch.fetch_add(1, Ordering::SeqCst) & 1;
        // Readers still pinned on the old parity may be about to bump
        // `old`'s strong count; wait them out (their critical section is
        // a few instructions — this is a bounded spin, not a lock).
        while self.pins[old_parity].load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        // SAFETY: `old` came from `Arc::into_raw` (via `new` or an
        // earlier `store`), was swapped out exactly once, and no reader
        // can reach it anymore.
        drop(unsafe { Arc::from_raw(old) });
    }
}

impl<T> Drop for AtomicArc<T> {
    fn drop(&mut self) {
        let raw = *self.ptr.get_mut();
        // SAFETY: the cell owns one strong reference to the current
        // value; `&mut self` means no reader or writer is in flight.
        drop(unsafe { Arc::from_raw(raw) });
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for AtomicArc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicArc").field(&self.load()).finish()
    }
}

// SAFETY: the cell hands out `Arc<T>` clones across threads, exactly
// like `Arc<T>` itself — the same bounds apply.
unsafe impl<T: Send + Sync> Send for AtomicArc<T> {}
// SAFETY: see above; all interior mutation is via atomics.
unsafe impl<T: Send + Sync> Sync for AtomicArc<T> {}

#[cfg(test)]
mod tests {
    use super::{AtomicArc, Mutex};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn concurrent_increments() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn atomic_arc_load_store_round_trip() {
        let cell = AtomicArc::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        // The previous value was dropped; the current one is shared.
        let held = cell.load();
        cell.store(Arc::new(3));
        assert_eq!(*held, 2, "a held Arc outlives the store that replaced it");
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn atomic_arc_concurrent_readers_see_monotone_values() {
        let cell = Arc::new(AtomicArc::new(Arc::new(0u64)));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..20_000 {
                        let v = *cell.load();
                        assert!(v >= last, "observed value went backwards");
                        last = v;
                    }
                })
            })
            .collect();
        for v in 1..=1_000u64 {
            cell.store(Arc::new(v));
        }
        for h in readers {
            h.join().unwrap();
        }
        assert_eq!(*cell.load(), 1_000);
    }

    #[test]
    fn atomic_arc_drops_every_value_exactly_once() {
        struct Counted(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        {
            let cell = AtomicArc::new(Arc::new(Counted(drops.clone())));
            for _ in 0..10 {
                cell.store(Arc::new(Counted(drops.clone())));
            }
            assert_eq!(drops.load(std::sync::atomic::Ordering::SeqCst), 10);
        }
        // Cell drop releases the final value.
        assert_eq!(drops.load(std::sync::atomic::Ordering::SeqCst), 11);
    }
}
