//! Offline vendored shim for the `parking_lot` API surface this workspace
//! uses: a [`Mutex`] whose `lock` returns the guard directly (no poison
//! `Result`), backed by `std::sync::Mutex`.

#![warn(missing_docs)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion primitive with `parking_lot`'s panic-transparent API.
///
/// Unlike `std::sync::Mutex`, [`Mutex::lock`] does not return a poison
/// `Result`: if a holder panicked, the data is handed over as-is.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn concurrent_increments() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
