//! Offline vendored shim for the parts of the `rand` crate this workspace
//! uses.
//!
//! The build environment has no registry access, so this crate provides a
//! small, self-contained implementation of the API surface the workspace
//! depends on:
//!
//! * [`Rng`] — the core entropy source trait (`next_u64`);
//! * [`RngExt`] — extension methods ([`RngExt::random`],
//!   [`RngExt::random_range`], [`RngExt::random_bool`]), blanket-implemented
//!   for every [`Rng`];
//! * [`SeedableRng`] — deterministic construction from a `u64` seed;
//! * [`rngs::StdRng`] — a fixed, portable PRNG (xoshiro256++ seeded via
//!   SplitMix64);
//! * [`seq::SliceRandom`] / [`seq::IndexedRandom`] — Fisher–Yates shuffling
//!   and uniform element choice on slices.
//!
//! The generators are deterministic for a given seed, which the test suite
//! relies on, but make no cross-version stability promise beyond this
//! workspace.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be produced uniformly at random by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, n)` (Lemire-style
/// widening multiply; the tiny modulo bias is irrelevant for tests and
/// experiments, and `n` here is always far below 2^64).
fn uniform_below(rng: &mut (impl Rng + ?Sized), n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience methods over any [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value of type `T` uniformly (floats land in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`. Panics on an empty range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole state derives from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Fast, passes the usual statistical batteries, and fully deterministic
    /// per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding recipe for xoshiro.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The raw 256-bit xoshiro state, for checkpoint/restore: feeding
        /// the four words back through [`StdRng::from_state`] rebuilds a
        /// generator that continues the exact same sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`]. An all-zero state is degenerate for
        /// xoshiro256++ (the sequence is constant zero); callers
        /// restoring untrusted state should reject it.
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }

        /// Word-at-a-time uniform draw in `[0, n)`: consumes exactly one
        /// `next_u64` via the same Lemire widening multiply that backs
        /// `random_range(0..n)`, skipping the generic range plumbing.
        ///
        /// This is the hot-path entry for reservoir draws and nested cell
        /// sampling: for any `n > 0`,
        /// `rng.word_below(n) == rng.random_range(0..n)` and the generator
        /// lands on the same [`StdRng::state`] afterwards, so samplers may
        /// mix both calls freely without perturbing checkpointed PRNG
        /// positions.
        #[inline]
        pub fn word_below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{uniform_below, Rng};

    /// Uniform random choice of one slice element.
    pub trait IndexedRandom {
        /// The element type.
        type Item;
        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }

    /// In-place uniform permutation of a slice.
    pub trait SliceRandom {
        /// Fisher–Yates shuffles the slice.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&y));
            let z: f64 = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&z));
            let w: u8 = rng.random_range(0..=255);
            let _ = w;
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn random_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn word_below_matches_random_range_and_state() {
        let mut a = StdRng::seed_from_u64(21);
        let mut b = StdRng::seed_from_u64(21);
        for n in [1u64, 2, 3, 17, 1 << 20, u64::MAX / 3] {
            for _ in 0..64 {
                assert_eq!(a.word_below(n), b.random_range(0..n));
                assert_eq!(a.state(), b.state(), "PRNG positions diverged at n={n}");
            }
        }
    }

    #[test]
    fn word_below_one_is_always_zero() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..100 {
            assert_eq!(rng.word_below(1), 0);
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(15);
        let v = [1u8, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
