//! Offline vendored shim for serde's derive macros.
//!
//! Generates `Serialize`/`Deserialize` impls for the vendored value-model
//! `serde` crate. Written against `proc_macro` directly (no `syn`/`quote`
//! available offline), so it supports exactly what this workspace derives:
//! non-generic structs with named fields.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Parses `struct Name { field: Type, ... }` out of a derive input stream,
/// skipping attributes and visibility modifiers.
fn parse_struct(input: TokenStream, trait_name: &str) -> StructShape {
    let mut iter = input.into_iter().peekable();
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            // `#[attr]` / doc comments: skip the bracket group that follows.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" {
                    match iter.next() {
                        Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                        other => panic!("derive({trait_name}): expected struct name, got {other:?}"),
                    }
                    break;
                } else if s == "enum" || s == "union" {
                    panic!("derive({trait_name}) shim supports only structs with named fields");
                }
                // `pub`, `pub(crate)` etc.: the group after `pub` is consumed
                // by the generic skip below.
            }
            _ => {}
        }
    }
    let name = name.unwrap_or_else(|| panic!("derive({trait_name}): no `struct` found"));

    // After the name: optional generics (unsupported), then the brace group.
    let mut body = None;
    for tt in iter {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("derive({trait_name}) shim does not support generic structs");
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                body = Some(g.stream());
                break;
            }
            TokenTree::Punct(p) if p.as_char() == ';' => {
                panic!("derive({trait_name}) shim supports only named-field structs");
            }
            _ => {}
        }
    }
    let body = body.unwrap_or_else(|| panic!("derive({trait_name}): no struct body"));

    // Fields: [attrs] [vis] name `:` type `,` — scan at depth 0.
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        let field_name = loop {
            match toks.next() {
                None => break None,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(_)) = toks.peek() {
                        toks.next();
                    }
                }
                Some(TokenTree::Ident(id)) => break Some(id.to_string()),
                Some(other) => panic!("derive({trait_name}): unexpected token {other:?} in struct body"),
            }
        };
        let Some(field_name) = field_name else { break };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive({trait_name}): expected `:` after field `{field_name}`, got {other:?}"),
        }
        // Consume the type up to the next top-level comma. Generic argument
        // lists never contain a bare top-level `,` here because angle
        // brackets arrive as individual puncts — track their depth.
        let mut angle_depth = 0i32;
        for tt in toks.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field_name);
    }

    StructShape { name, fields }
}

/// Derives the vendored `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input, "Serialize");
    let entries: String = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    let name = &shape.name;
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Map(vec![{entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input, "Deserialize");
    let fields: String = shape
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(\
                     value.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                     .map_err(|e| ::serde::DeError::custom(\
                         format!(\"field `{f}`: {{e}}\")))?,"
            )
        })
        .collect();
    let name = &shape.name;
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 Ok(Self {{ {fields} }})\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
