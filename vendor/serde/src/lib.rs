//! Offline vendored shim for the `serde` API surface this workspace uses.
//!
//! Instead of real serde's visitor architecture, this shim routes both
//! serialization and deserialization through a self-describing [`Value`]
//! tree — ample for the workspace's needs (JSON round-tripping of plain
//! structs of numbers, strings, vectors, options and maps) while staying
//! dependency-free. `#[derive(Serialize, Deserialize)]` is provided by the
//! vendored `serde_derive` and works on structs with named fields.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree, the interchange format of this shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// A key-ordered map (struct fields keep declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// A general type-mismatch or malformed-input error.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self(msg.to_string())
    }

    /// A struct field missing from the input map.
    pub fn missing(field: &str) -> Self {
        Self(format!("missing field `{field}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be turned into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting mismatches as [`DeError`].
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n: i128 = match value {
                    Value::I64(n) => *n as i128,
                    Value::U64(n) => *n as i128,
                    other => return Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    concat!("integer {} out of range for ", stringify!($t)), n)))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    Value::I64(wide as i64)
                } else {
                    Value::U64(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n: u64 = match value {
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::U64(n) => *n,
                    other => return Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    concat!("integer {} out of range for ", stringify!($t)), n)))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // The workspace's u128s (nanosecond totals) comfortably fit u64;
        // saturate rather than silently wrap if one ever does not.
        if *self <= u64::MAX as u128 {
            u64::to_value(&(*self as u64))
        } else {
            Value::U64(u64::MAX)
        }
    }
}

impl Deserialize for u128 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        u64::from_value(value).map(u128::from)
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::F64(x) => Ok(*x as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    other => Err(DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// -------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::custom(format!("expected pair, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(value).map(Vec::into_boxed_slice)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(std::sync::Arc::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected map, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected map, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::I64(3));
    }

    #[test]
    fn unsigned_above_i64_max_uses_u64() {
        let v = (u64::MAX).to_value();
        assert_eq!(v, Value::U64(u64::MAX));
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn map_get() {
        let m = Value::Map(vec![("a".into(), Value::I64(1))]);
        assert_eq!(m.get("a"), Some(&Value::I64(1)));
        assert_eq!(m.get("b"), None);
    }

    #[test]
    fn out_of_range_integer_errors() {
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
