//! Offline vendored shim for the `criterion` API surface this workspace's
//! benches use.
//!
//! The statistical machinery of real criterion is replaced by a simple
//! timed loop: each benchmark runs a short calibration pass, then a fixed
//! number of measurement iterations, and prints mean time per iteration
//! (plus throughput when configured). Good enough to keep `cargo bench`
//! meaningful for relative comparisons while building fully offline.
//!
//! Set `RDS_BENCH_FAST=1` to run every benchmark body exactly once
//! (used by CI to smoke-test the benches without waiting on timing loops).

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export used by some criterion setups; identical to
/// [`std::hint::black_box`].
pub use std::hint::black_box;

const TARGET_MEASURE_TIME: Duration = Duration::from_millis(300);

fn fast_mode() -> bool {
    std::env::var_os("RDS_BENCH_FAST").is_some_and(|v| v != "0")
}

/// Iteration driver handed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count so the
    /// measurement loop takes roughly 300 ms.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if fast_mode() {
            let start = Instant::now();
            black_box(routine());
            self.total = start.elapsed();
            self.iters_done = 1;
            return;
        }
        // Calibration: one untimed warm-up, then estimate cost.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_MEASURE_TIME.as_nanos() / once.as_nanos())
            .clamp(1, 1000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters_done = iters;
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, like `name/param`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(&id.to_string(), None, f);
    }
}

/// A group of benchmarks sharing a name and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for criterion compatibility; the shim picks its own
    /// iteration counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for criterion compatibility; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
    }

    /// Ends the group (report flushing is a no-op in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher {
        iters_done: 0,
        total: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iters_done == 0 {
        eprintln!("  {label}: no measurement (b.iter never called)");
        return;
    }
    let per_iter = bencher.total.as_secs_f64() / bencher.iters_done as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    eprintln!(
        "  {label}: {:.3} ms/iter ({} iters){rate}",
        per_iter * 1e3,
        bencher.iters_done
    );
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        std::env::set_var("RDS_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("RDS_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10)).sample_size(5);
        let input = 3u64;
        group.bench_with_input(BenchmarkId::from_parameter(input), &input, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_with_input(BenchmarkId::new("named", 7), &input, |b, &x| {
            b.iter(|| x + 1)
        });
        group.finish();
    }
}
