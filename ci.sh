#!/usr/bin/env bash
# Tier-1 gate for the workspace, as one command. Everything runs offline
# against the vendored shims; no network access is required.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (workspace, includes doctests)"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings (all targets)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> rds-lint (repo invariants: panic-free serving path, atomic writes, determinism)"
cargo run -q -p rds-lint
test -s LINT_report.json || { echo "LINT_report.json missing"; exit 1; }
grep -q '"finding_count": 0' LINT_report.json || {
    echo "LINT_report.json records findings"; exit 1; }

echo "==> cargo doc --no-deps (warnings denied; public surface stays documented)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p robust-distinct-sampling -p rds-core -p rds-engine -p rds-cli \
    -p rds-geometry -p rds-hashing -p rds-stream -p rds-metrics \
    -p rds-datasets -p rds-baselines -p rds-server -p rds-tenant

echo "==> benches compile"
cargo bench -p rds-bench --no-run

echo "==> sharded-engine throughput smoke bench (emits BENCH_engine.json)"
RDS_BENCH_FAST=1 RDS_BENCH_OUT="$PWD/BENCH_engine.json" \
    cargo bench -p rds-bench --bench engine
test -s BENCH_engine.json || { echo "BENCH_engine.json missing"; exit 1; }

echo "==> unsharded ingest throughput gate (cell-indexed store, PR 10)"
# The cell-indexed candidate store took the smoke-mode unsharded loop
# from ~2.56M points/s (linear candidate scan) to ~5.3-5.9M on a quiet
# box. The floor sits well below the quiet-box rate to absorb shared-
# runner noise while staying far above the linear-scan era — a slide
# back to per-point scans cannot pass it.
UNSHARDED_FLOOR=3200000
python3 - "$UNSHARDED_FLOOR" <<'EOF'
import json, sys
floor = float(sys.argv[1])
with open("BENCH_engine.json") as fh:
    report = json.load(fh)
rate = report["unsharded_points_per_sec"]
print(f"    unsharded ingest: {rate:,.0f} pts/s (floor {floor:,.0f})")
if rate < floor:
    sys.exit(f"unsharded ingest rate {rate:,.0f} pts/s fell below the "
             f"committed floor {floor:,.0f}")
EOF

echo "==> writer-under-load regression gate (CoW publication, PR 7)"
# The writer serving 4 concurrent readers must keep at least this
# fraction of the standalone unsharded ingest rate. Before O(changes)
# copy-on-write publication the ratio was ~0.05; with it the smoke run
# sat around 0.6. The cell-indexed store (PR 10) then made the
# denominator ~2.3x faster — the writer sped up too, but it also pays
# routing, channel, and publication costs the raw loop does not, so
# the steady ratio now sits around 0.2-0.3 with noisy samples down to
# ~0.155. The floor still catches a regression toward full-copy
# publishes (~0.05) by a wide margin.
WRITER_LOAD_FLOOR=0.12
python3 - "$WRITER_LOAD_FLOOR" <<'EOF'
import json, sys
floor = float(sys.argv[1])
with open("BENCH_engine.json") as fh:
    report = json.load(fh)
writer = report["concurrent"]["writer_points_per_sec"]
base = report["unsharded_points_per_sec"]
ratio = writer / base
print(f"    writer under load: {writer:,.0f} pts/s "
      f"/ standalone {base:,.0f} pts/s = {ratio:.2f} (floor {floor})")
if ratio < floor:
    sys.exit(f"writer-under-load ratio {ratio:.3f} fell below the "
             f"committed floor {floor}")
EOF

echo "==> concurrent writer/reader stress suite (--release)"
cargo test -q --release --test concurrent_split

echo "==> checkpoint crash-recovery + round-trip property suites (--release)"
cargo test -q --release --test checkpoint --test checkpoint_props

echo "==> CLI checkpoint smoke (save, crash, restore+resume, count)"
cargo build -q --release -p rds-cli
CHK_DIR=$(mktemp -d)
for i in $(seq 0 119); do echo "$(( (i % 12) * 10 )).0"; done > "$CHK_DIR/all.csv"
head -60 "$CHK_DIR/all.csv" > "$CHK_DIR/first.csv"
tail -60 "$CHK_DIR/all.csv" > "$CHK_DIR/second.csv"
target/release/rds checkpoint save "$CHK_DIR/half.chk" \
    --alpha 0.5 --seed 5 --shards 2 < "$CHK_DIR/first.csv" > "$CHK_DIR/save.out"
pre_crash=$(grep -o 'f0 [0-9.]*' "$CHK_DIR/save.out")
target/release/rds checkpoint restore "$CHK_DIR/half.chk" \
    < "$CHK_DIR/second.csv" > "$CHK_DIR/restore.out"
restored=$(grep -o 'f0 [0-9.]*' "$CHK_DIR/restore.out")
counted=$(target/release/rds count --alpha 0.5 --eps 1.0 --seed 5 < "$CHK_DIR/all.csv")
echo "    pre-crash: $pre_crash | restored+resumed: $restored | uninterrupted count: $counted"
[ -n "$pre_crash" ] && [ "$restored" = "$pre_crash" ] || {
    echo "restored estimate '$restored' does not match pre-crash '$pre_crash'"; exit 1; }
[ "$counted" = "12.0" ] && [ "$restored" = "f0 12.0" ] || {
    echo "crash-recovered estimate diverged from the uninterrupted count"; exit 1; }
rm -rf "$CHK_DIR"

echo "==> merge/uniformity/window-boundary/conformance test suite"
cargo test -q --test distributed_props --test uniformity --test sliding_window_bounds \
    --test trait_conformance
cargo test -q -p rds-engine

echo "==> HTTP server robustness + e2e suites"
cargo test -q -p rds-server
cargo test -q --release --test server_e2e

echo "==> HTTP server smoke (serve on an ephemeral port, load, drain; emits BENCH_server.json)"
cargo build -q --release -p rds-bench --bin loadgen
SRV_DIR=$(mktemp -d)
target/release/rds serve --addr 127.0.0.1:0 --dim 2 --alpha 0.5 \
    --seed 42 --publish-every 256 > "$SRV_DIR/serve.out" 2>"$SRV_DIR/serve.err" &
SRV_PID=$!
SRV_ADDR=""
for _ in $(seq 1 100); do
    SRV_ADDR=$(sed -n 's/^rds-server listening on //p' "$SRV_DIR/serve.out")
    [ -n "$SRV_ADDR" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || { cat "$SRV_DIR/serve.err"; exit 1; }
    sleep 0.1
done
[ -n "$SRV_ADDR" ] || { echo "server never announced its address"; kill "$SRV_PID"; exit 1; }
# the loadgen readiness-polls /healthz, fires the mixed workload, posts
# /admin/shutdown, and exits nonzero on any 5xx / dropped connection /
# failed drain — that exit code is the gate
RDS_BENCH_FAST=1 RDS_BENCH_OUT="$PWD/BENCH_server.json" \
    target/release/loadgen --addr "$SRV_ADDR" --shutdown
wait "$SRV_PID" || { echo "server exited nonzero after shutdown"; exit 1; }
rm -rf "$SRV_DIR"
test -s BENCH_server.json || { echo "BENCH_server.json missing"; exit 1; }
python3 <<'EOF'
import json, sys
with open("BENCH_server.json") as fh:
    report = json.load(fh)
for cls in ("ingest", "query", "f0"):
    stats = report[cls]
    if stats["requests"] <= 0:
        sys.exit(f"no {cls} requests were recorded")
    print(f"    {cls}: {stats['requests_per_sec']:,.0f} req/s "
          f"p50 {stats['p50_micros']}us p99 {stats['p99_micros']}us")
if report["status_5xx"] or report["io_errors"]:
    sys.exit(f"server smoke saw {report['status_5xx']} 5xx responses and "
             f"{report['io_errors']} socket errors")
EOF

echo "==> tenant registry suites (eviction invisibility, crash matrix, HTTP e2e)"
cargo test -q -p rds-tenant
cargo test -q --release --test tenant_e2e

echo "==> multi-tenant smoke bench (budget bound + eviction invisibility)"
# Fast mode writes to a scratch path: the committed BENCH_tenants.json
# is the full 1M-tenant run and must not be clobbered by the smoke.
TEN_OUT=$(mktemp)
RDS_BENCH_FAST=1 RDS_BENCH_OUT="$TEN_OUT" \
    cargo bench -p rds-bench --bench tenants
python3 - "$TEN_OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as fh:
    report = json.load(fh)
resident = report["zipf_steady_state"]["max_resident_words"]
budget = report["budget_words"]
print(f"    {report['key_space']:,} tenants: max resident {resident:,} "
      f"/ budget {budget:,} words; {report['spills']:,} spills, "
      f"{report['restores']:,} restores")
if resident > budget or not report["resident_bounded_by_budget"]:
    sys.exit(f"resident_words {resident} exceeded the budget {budget}")
if not report["retouch_bit_identical"]:
    sys.exit("a re-touched (spilled) tenant diverged from the "
             "eviction-free control")
if report["spills"] <= 0:
    sys.exit("the smoke never evicted; the budget gate proved nothing")
EOF
rm -f "$TEN_OUT"

echo "==> multi-tenant serve smoke (rds serve --tenants, zipf traffic, drain)"
TEN_DIR=$(mktemp -d)
target/release/rds serve --addr 127.0.0.1:0 --dim 2 --alpha 0.5 \
    --seed 42 --publish-every 256 \
    --tenants --budget-words 1048576 --spill-dir "$TEN_DIR/spill" \
    > "$TEN_DIR/serve.out" 2>"$TEN_DIR/serve.err" &
TEN_PID=$!
TEN_ADDR=""
for _ in $(seq 1 100); do
    TEN_ADDR=$(sed -n 's/^rds-server listening on //p' "$TEN_DIR/serve.out")
    [ -n "$TEN_ADDR" ] && break
    kill -0 "$TEN_PID" 2>/dev/null || { cat "$TEN_DIR/serve.err"; exit 1; }
    sleep 0.1
done
[ -n "$TEN_ADDR" ] || {
    echo "tenant server never announced its address"; kill "$TEN_PID"; exit 1; }
RDS_BENCH_FAST=1 RDS_BENCH_OUT="$TEN_DIR/BENCH_server_tenants.json" \
    target/release/loadgen --addr "$TEN_ADDR" --tenants 200 --shutdown
wait "$TEN_PID" || { echo "tenant server exited nonzero after shutdown"; exit 1; }
rm -rf "$TEN_DIR"

echo "==> examples run"
for ex in quickstart f0_monitor tweet_window video_dedup; do
    cargo run -q --release --example "$ex" > /dev/null
done

echo "ci.sh: all green"
