//! Trending-topics over a time-based sliding window.
//!
//! "Numerous tweets are re-sent with small edits" (paper, Section 1). We
//! stream tweet embeddings with timestamps; each topic produces bursts of
//! re-posts with small edits. A time-based sliding window keeps the last
//! hour; the robust sliding-window sampler (Algorithm 3) answers
//! "pick a random topic currently being discussed" — unbiased by how
//! often each topic is re-posted — and the Section 5 estimator counts the
//! live topics.
//!
//! Run with: `cargo run --release --example tweet_window`

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use robust_distinct_sampling::geometry::Point;
use robust_distinct_sampling::stream::{Stamp, StreamItem, Window};
use robust_distinct_sampling::Rds;

const DIM: usize = 6;
const ALPHA: f64 = 0.1; // edits stay within alpha of the original
const HOUR: u64 = 3600; // window length in seconds

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    // 30 topics; topic t trends during a random interval of the day and
    // is re-posted with edits while trending.
    let n_topics = 30usize;
    let topics: Vec<(Point, u64, u64)> = (0..n_topics)
        .map(|_| {
            let center = Point::new((0..DIM).map(|_| rng.random_range(0.0..50.0)).collect());
            let start = rng.random_range(0..20 * HOUR);
            let duration = rng.random_range(HOUR..6 * HOUR);
            (center, start, start + duration)
        })
        .collect();

    // Build the tweet stream: one tweet per topic-second with prob ~ 1/200.
    let mut tweets: Vec<(Point, u64)> = Vec::new();
    for second in 0..24 * HOUR {
        for (center, start, end) in &topics {
            if second >= *start && second < *end && rng.random_range(0..200) == 0 {
                let edited: Vec<f64> = center
                    .coords()
                    .iter()
                    .map(|c| c + rng.random_range(-0.03..0.03))
                    .collect();
                tweets.push((Point::new(edited), second));
            }
        }
    }
    tweets.sort_by_key(|&(_, t)| t);
    println!("simulated {} tweets across {n_topics} topics over 24h", tweets.len());

    // The facade handles the time-based window; add .shards(n) to spread
    // a heavier feed across workers with the same calls.
    let mut sampler = Rds::builder()
        .dim(DIM)
        .alpha(ALPHA)
        .seed(99)
        .expected_len(tweets.len() as u64)
        .window(Window::Time(HOUR))
        .build()
        .expect("valid configuration");

    let mut next_report = 4 * HOUR;
    for (seq, (p, t)) in tweets.iter().enumerate() {
        sampler.process_item(StreamItem::new(p.clone(), Stamp::new(seq as u64, *t)));
        if *t >= next_report {
            let live = topics
                .iter()
                .filter(|(_, s, e)| *t < e + HOUR && t + HOUR > *s)
                .count();
            match sampler.query() {
                Some(sample) => println!(
                    "t={:>2}h  ~{:>2} topics trending (estimate {:>5.1}); random live topic seen {} times in the last hour",
                    t / HOUR,
                    live,
                    sampler.f0_estimate(),
                    sample.count
                ),
                None => println!("t={:>2}h  window empty", t / HOUR),
            }
            next_report += 4 * HOUR;
        }
    }

    println!(
        "\nprocessed {} tweets over a {}-second window ({} live-topic estimate at the end)",
        sampler.seen(),
        HOUR,
        sampler.f0_estimate()
    );
}
