//! Monitoring distinct entities under near-duplicates: robust F0 vs the
//! industry-standard HyperLogLog.
//!
//! A sensor fleet re-transmits readings with jitter; HyperLogLog counts
//! every retransmission as a new distinct reading, while the robust
//! estimator (Section 5 of the paper) counts *entities*.
//!
//! Run with: `cargo run --release --example f0_monitor`

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use robust_distinct_sampling::baselines::{HyperLogLog, KmvDistinctEstimator};
use robust_distinct_sampling::core::{RobustF0Estimator, SamplerConfig};
use robust_distinct_sampling::geometry::Point;
use robust_distinct_sampling::hashing::point_identity;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let dim = 4;
    let alpha = 0.05;

    println!("{:>8} {:>10} {:>10} {:>10} {:>10}", "sensors", "points", "robust", "HLL", "KMV");
    for &n_sensors in &[50usize, 100, 200, 400] {
        // each sensor re-transmits 20..60 jittered readings
        let mut stream: Vec<Point> = Vec::new();
        for _ in 0..n_sensors {
            let base: Vec<f64> = (0..dim).map(|_| rng.random_range(0.0..1000.0)).collect();
            for _ in 0..rng.random_range(20..60) {
                let jitter: Vec<f64> = base
                    .iter()
                    .map(|c| c + rng.random_range(-0.01..0.01))
                    .collect();
                stream.push(Point::new(jitter));
            }
        }
        for i in (1..stream.len()).rev() {
            stream.swap(i, rng.random_range(0..=i));
        }

        let cfg = SamplerConfig::new(dim, alpha)
            .with_seed(5)
            .with_expected_len(stream.len() as u64);
        let mut robust = RobustF0Estimator::new(cfg, 0.3, 5);
        let mut hll = HyperLogLog::new(12, 9);
        let mut kmv = KmvDistinctEstimator::new(256, 9);
        for p in &stream {
            robust.process(p);
            let id = point_identity(p.coords(), 1);
            hll.process(id);
            kmv.process(id);
        }
        println!(
            "{:>8} {:>10} {:>10.0} {:>10.0} {:>10.0}",
            n_sensors,
            stream.len(),
            robust.estimate(),
            hll.estimate(),
            kmv.estimate()
        );
    }
    println!("\nHLL/KMV count retransmissions; the robust estimator counts sensors.");
}
