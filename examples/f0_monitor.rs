//! A *live* monitor of distinct entities under near-duplicates: one
//! writer thread ingests a jittery sensor stream through `RdsWriter`
//! while a reader thread — holding only a cloned `RdsReader` — prints
//! the robust F0 estimate as snapshots are published. At the end the
//! robust count is compared against HyperLogLog and KMV, which count
//! every retransmission as a new distinct reading.
//!
//! This is the writer/reader split in its natural habitat: the reader
//! never touches the ingest path (queries are `&self` on an immutable
//! epoch-stamped snapshot), and the writer never waits on the reader.
//!
//! Run with: `cargo run --release --example f0_monitor`

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use robust_distinct_sampling::baselines::{HyperLogLog, KmvDistinctEstimator};
use robust_distinct_sampling::geometry::Point;
use robust_distinct_sampling::hashing::point_identity;
use robust_distinct_sampling::Rds;
use std::sync::atomic::{AtomicBool, Ordering};

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let dim = 4;
    let alpha = 0.05;
    let n_sensors = 400usize;

    // Each sensor re-transmits 20..60 jittered readings; shuffled so
    // near-duplicates interleave like real traffic.
    let mut stream: Vec<Point> = Vec::new();
    for _ in 0..n_sensors {
        let base: Vec<f64> = (0..dim).map(|_| rng.random_range(0.0..1000.0)).collect();
        for _ in 0..rng.random_range(20..60) {
            let jitter: Vec<f64> = base
                .iter()
                .map(|c| c + rng.random_range(-0.01..0.01))
                .collect();
            stream.push(Point::new(jitter));
        }
    }
    for i in (1..stream.len()).rev() {
        stream.swap(i, rng.random_range(0..=i));
    }

    let (mut writer, reader) = Rds::builder()
        .dim(dim)
        .alpha(alpha)
        .seed(5)
        .expected_len(stream.len() as u64)
        .count_accuracy(0.3)
        .publish_every(1024)
        .build_split()
        .expect("valid configuration");

    let mut hll = HyperLogLog::new(12, 9);
    let mut kmv = KmvDistinctEstimator::new(256, 9);
    let done = AtomicBool::new(false);

    println!("{:>8} {:>10} {:>10}", "epoch", "seen", "robust F0");
    std::thread::scope(|scope| {
        // The monitor: a plain reader clone on its own thread, printing a
        // line whenever the writer publishes a fresh snapshot.
        let monitor = reader.clone();
        let done_ref = &done;
        scope.spawn(move || {
            let mut last_epoch = u64::MAX;
            loop {
                let snap = monitor.snapshot();
                if snap.epoch() != last_epoch {
                    last_epoch = snap.epoch();
                    println!(
                        "{:>8} {:>10} {:>10.0}",
                        snap.epoch(),
                        snap.seen(),
                        snap.f0_estimate()
                    );
                }
                if done_ref.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });

        // The writer: full-speed ingestion; the cadence publishes every
        // 1024 items without the reader ever blocking it.
        for p in &stream {
            writer.process(p.clone());
            let id = point_identity(p.coords(), 1);
            hll.process(id);
            kmv.process(id);
        }
        writer.publish();
        done.store(true, Ordering::Relaxed);
    });

    println!(
        "\n{} sensors, {} transmissions: robust {:.0} vs HLL {:.0} vs KMV {:.0}",
        n_sensors,
        stream.len(),
        reader.f0_estimate(),
        hll.estimate(),
        kmv.estimate()
    );
    println!("HLL/KMV count retransmissions; the robust estimator counts sensors.");
}
