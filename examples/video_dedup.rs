//! Video-catalogue deduplication — the paper's opening motivation.
//!
//! "YouTube contains many videos of almost the same content; they appear
//! to be slightly different due to cuts, compression and change of
//! resolutions." We simulate a stream of video *fingerprints* (feature
//! vectors) where popular videos are re-uploaded many times with small
//! perturbations, then compare:
//!
//! * a standard min-rank ℓ0-sampler — biased toward heavily re-uploaded
//!   videos;
//! * the robust sampler — uniform over *distinct videos*.
//!
//! Run with: `cargo run --release --example video_dedup`

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use robust_distinct_sampling::baselines::PointMinRankSampler;
use robust_distinct_sampling::core::{RobustL0Sampler, SamplerConfig};
use robust_distinct_sampling::geometry::Point;
use robust_distinct_sampling::metrics::SampleHistogram;

const DIM: usize = 8; // fingerprint dimension
const ALPHA: f64 = 0.05; // two uploads of the same video differ by < alpha

struct Catalogue {
    stream: Vec<(Point, usize)>,
    n_videos: usize,
}

/// 40 videos; video v is re-uploaded `ceil(200 / (v+1))` times — a
/// power-law popularity curve (like the paper's `-pl` datasets).
fn simulate_catalogue(seed: u64) -> Catalogue {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_videos = 40;
    let mut stream = Vec::new();
    for v in 0..n_videos {
        let master: Vec<f64> = (0..DIM).map(|_| rng.random_range(0.0..10.0)).collect();
        let uploads = 200usize.div_ceil(v + 1);
        for _ in 0..uploads {
            // re-encode: tiny perturbation of the fingerprint
            let fp: Vec<f64> = master
                .iter()
                .map(|c| c + rng.random_range(-0.01..0.01))
                .collect();
            stream.push((Point::new(fp), v));
        }
    }
    for i in (1..stream.len()).rev() {
        stream.swap(i, rng.random_range(0..=i));
    }
    Catalogue { stream, n_videos }
}

fn main() {
    let trials = 400;
    let cat = simulate_catalogue(1);
    println!(
        "catalogue: {} uploads of {} distinct videos (most popular: {} uploads)",
        cat.stream.len(),
        cat.n_videos,
        200
    );

    let mut robust_hist = SampleHistogram::new(cat.n_videos);
    let mut naive_hist = SampleHistogram::new(cat.n_videos);

    for t in 0..trials {
        // robust sampler: uniform over videos
        let cfg = SamplerConfig::builder(DIM, ALPHA)
            .seed(1000 + t)
            .expected_len(cat.stream.len() as u64).build().unwrap();
        let mut robust = RobustL0Sampler::try_new(cfg).unwrap();
        // naive baseline: uniform over uploads
        let mut naive = PointMinRankSampler::new(2000 + t);
        for (p, _) in &cat.stream {
            robust.process(p);
            naive.process(p);
        }
        let vid_of = |q: &Point| {
            cat.stream
                .iter()
                .find(|(p, _)| p == q)
                .map(|(_, v)| *v)
                .expect("sample from stream")
        };
        robust_hist.record(vid_of(robust.query().expect("non-empty")));
        naive_hist.record(vid_of(naive.sample().expect("non-empty")));
    }

    println!("\nsampling frequency of video 0 (the most re-uploaded):");
    println!(
        "  robust sampler:   {:.1}% of queries (fair share: {:.1}%)",
        100.0 * robust_hist.frequencies()[0],
        100.0 / cat.n_videos as f64
    );
    println!(
        "  min-rank baseline: {:.1}% of queries — biased toward popular videos",
        100.0 * naive_hist.frequencies()[0]
    );
    println!("\nuniformity (maxDevNm; lower is better):");
    println!("  robust sampler:    {:.2}", robust_hist.max_dev_nm());
    println!("  min-rank baseline: {:.2}", naive_hist.max_dev_nm());
}
