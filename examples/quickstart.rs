//! Quickstart: robust distinct sampling in five minutes.
//!
//! A stream of noisy points arrives; points within `alpha` of each other
//! are near-duplicates of the same entity. We draw a uniform sample over
//! *entities* (not points) and estimate how many entities there are.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use robust_distinct_sampling::core::{RobustF0Estimator, SamplerConfig};
use robust_distinct_sampling::geometry::Point;
use robust_distinct_sampling::Rds;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // Twenty entities in R^3, each emitting 5..80 noisy observations.
    let dim = 3;
    let alpha = 0.1; // near-duplicate threshold
    let mut stream: Vec<(Point, usize)> = Vec::new();
    for entity in 0..20usize {
        let center: Vec<f64> = (0..dim).map(|_| rng.random_range(0.0..100.0)).collect();
        let copies = rng.random_range(5..80);
        for _ in 0..copies {
            let noisy: Vec<f64> = center
                .iter()
                .map(|c| c + rng.random_range(-0.02..0.02))
                .collect();
            stream.push((Point::new(noisy), entity));
        }
    }
    // Shuffle so duplicates are interleaved, as in a real stream.
    for i in (1..stream.len()).rev() {
        stream.swap(i, rng.random_range(0..=i));
    }
    println!(
        "stream: {} points from 20 entities (entity sizes vary 5..80)",
        stream.len()
    );

    // --- Robust l0-sampling through the facade --------------------------
    // Rds::builder() is the one entry point: change .window(...) or
    // .shards(...) and the same handle serves every regime.
    let mut rds = Rds::builder()
        .dim(dim)
        .alpha(alpha)
        .seed(42)
        .expected_len(stream.len() as u64)
        .build()
        .expect("valid configuration");
    for (p, _) in &stream {
        rds.process(p.clone());
    }
    let sample = rds.query().expect("stream is non-empty");
    let entity = stream
        .iter()
        .find(|(p, _)| *p == sample.rep)
        .map(|(_, e)| *e)
        .expect("sample comes from the stream");
    println!(
        "sampled entity {entity} (uniform over entities, not points; seen {} times)",
        sample.count
    );
    println!("estimated distinct entities: {:.1}", rds.f0_estimate());

    // The same stream, sharded across 4 worker threads — identical calls.
    let mut sharded = Rds::builder()
        .dim(dim)
        .alpha(alpha)
        .seed(42)
        .expected_len(stream.len() as u64)
        .shards(4)
        .build()
        .expect("valid configuration");
    for (p, _) in &stream {
        sharded.process(p.clone());
    }
    println!(
        "sharded across {} workers: estimate {:.1}",
        sharded.shards(),
        sharded.f0_estimate()
    );

    let cfg = SamplerConfig::builder(dim, alpha)
        .seed(42)
        .expected_len(stream.len() as u64).build().unwrap();

    // --- Robust F0 estimation (Section 5) -------------------------------
    let mut f0 = RobustF0Estimator::try_new(cfg, 0.3, 5).unwrap();
    for (p, _) in &stream {
        f0.process(p);
    }
    println!(
        "estimated distinct entities: {:.1} (truth: 20; raw points: {})",
        f0.estimate(),
        stream.len()
    );
}
