//! Section 4 integration tests: `(alpha, beta)`-sparse datasets in higher
//! dimension with the `d * alpha` grid, plus the JL route of Remark 2.

use rds_core::{JlRobustSampler, RobustL0Sampler, SamplerConfig};
use rds_datasets::partition;
use rds_geometry::{standard_normal, Point};
use rds_metrics::SampleHistogram;

/// An `(alpha, beta)`-sparse stream in dimension `d` with
/// `beta > d^{1.5} alpha`: group centers far apart, members jittered
/// within `alpha/2` of the center.
fn sparse_stream(
    n_groups: usize,
    per_group: usize,
    dim: usize,
    alpha: f64,
    seed: u64,
) -> Vec<(Point, usize)> {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let beta = (dim as f64).powf(1.5) * alpha * 4.0;
    let mut out = Vec::new();
    for g in 0..n_groups {
        // centers on a line with spacing > beta keeps sparsity trivial
        let mut center = vec![0.0; dim];
        center[0] = g as f64 * (beta + 1.0);
        for _ in 0..per_group {
            let p: Vec<f64> = center
                .iter()
                .map(|c| c + rng.random_range(-1.0..1.0) * alpha / (2.0 * (dim as f64).sqrt()))
                .collect();
            out.push((Point::new(p), g));
        }
    }
    // shuffle
    for i in (1..out.len()).rev() {
        let j = rng.random_range(0..=i);
        out.swap(i, j);
    }
    out
}

#[test]
fn high_dim_config_samples_correctly() {
    let dim = 16;
    let alpha = 0.25;
    let stream = sparse_stream(15, 8, dim, alpha, 1);
    let pts: Vec<Point> = stream.iter().map(|(p, _)| p.clone()).collect();
    assert!(partition::is_well_separated(&pts, alpha));

    let cfg = SamplerConfig::builder(dim, alpha)
        .high_dim() // grid side d * alpha (Section 4)
        .seed(3)
        .expected_len(stream.len() as u64)
        .build()
        .unwrap();
    let mut s = RobustL0Sampler::try_new(cfg).unwrap();
    for (p, _) in &stream {
        s.process(p);
    }
    // exactly one representative per group across accept+reject
    assert_eq!(s.accept_set().len() + s.reject_set().len(), 15);
    assert!(s.query().is_some());
}

#[test]
fn high_dim_sampling_is_uniformish() {
    let dim = 12;
    let alpha = 0.25;
    let stream = sparse_stream(10, 6, dim, alpha, 2);
    let mut hist = SampleHistogram::new(10);
    // kappa0 = 1 gives a small threshold, so Lemma 2.5's non-emptiness
    // guarantee has a noticeable 2^-threshold tail; tolerate rare misses.
    let mut misses = 0u32;
    for run in 0..300u64 {
        let cfg = SamplerConfig::builder(dim, alpha)
            .high_dim()
            .seed(run * 191 + 7)
            .expected_len(stream.len() as u64)
            .kappa0(1.0).build().unwrap();
        let mut s = RobustL0Sampler::try_new(cfg).unwrap();
        for (p, _) in &stream {
            s.process(p);
        }
        let Some(q) = s.query().cloned() else {
            misses += 1;
            continue;
        };
        let g = stream
            .iter()
            .find(|(p, _)| *p == q)
            .map(|(_, g)| *g)
            .expect("from stream");
        hist.record(g);
    }
    assert!(misses < 30, "accept set emptied {misses}/300 times");
    assert!(
        hist.std_dev_nm() < 0.6,
        "high-dim sampling biased: {:?}",
        hist.counts()
    );
}

#[test]
fn adj_dfs_stays_cheap_in_high_dim() {
    // Lemma 4.2's consequence: |adj(p)| is small despite the 3^d
    // neighbourhood, so the DFS visits few cells.
    use rds_geometry::{adjacent_cells, Grid};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let dim = 20;
    let alpha = 0.1;
    let mut rng = StdRng::seed_from_u64(5);
    let grid = Grid::random(dim, dim as f64 * alpha, &mut rng);
    let mut total = 0usize;
    for i in 0..50 {
        let p = Point::new((0..dim).map(|j| (i * j) as f64 * 0.37).collect());
        total += adjacent_cells(&grid, &p, alpha).len();
    }
    let avg = total as f64 / 50.0;
    assert!(
        avg < 64.0,
        "average |adj(p)| = {avg}, expected far below 3^20"
    );
}

#[test]
fn jl_sampler_handles_extreme_dimension() {
    let dim = 256;
    let alpha = 0.5;
    // well-separated gaussian-ish clusters in R^256
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(6);
    let mut stream = Vec::new();
    for g in 0..12usize {
        let mut center = vec![0.0; dim];
        center[g] = 500.0;
        for _ in 0..5 {
            let p: Vec<f64> = center
                .iter()
                .map(|c| c + standard_normal(&mut rng) * 0.002)
                .collect();
            stream.push((Point::new(p), g));
        }
    }
    let cfg = SamplerConfig::builder(dim, alpha)
        .seed(7)
        .expected_len(stream.len() as u64).build().unwrap();
    let mut s = JlRobustSampler::try_new(dim, alpha, 0.5, cfg).unwrap();
    for (p, _) in &stream {
        s.process(p);
    }
    assert!(s.projected_dim() < dim);
    let q = s.query().expect("non-empty");
    assert_eq!(q.dim(), dim);
    assert!(stream.iter().any(|(p, _)| p == q));
}
