//! Sliding-window boundary behaviour: expiry at exactly `width`,
//! degenerate `width == 1`, and the de-facto-infinite `width == u64::MAX`
//! (regression for the `Window::live` saturating-add fix and the level
//! hierarchy's `2^level` arithmetic), for both [`SlidingWindowSampler`]
//! and [`SlidingWindowF0`].

use rds_core::{RobustL0Sampler, SamplerConfig, SlidingWindowF0, SlidingWindowSampler};
use rds_geometry::Point;
use rds_stream::{Stamp, StreamItem, Window};

fn item(x: f64, seq: u64) -> StreamItem {
    StreamItem::new(Point::new(vec![x]), Stamp::at(seq))
}

fn cfg(seed: u64) -> SamplerConfig {
    SamplerConfig::builder(1, 0.5)
        .seed(seed)
        .expected_len(1 << 10).build().unwrap()
}

#[test]
fn window_live_saturates_at_u64_max_width() {
    // Regression for the PR 1 saturating fix: a width near u64::MAX must
    // never overflow `stamp + w` and wrongly expire everything.
    let w = Window::Sequence(u64::MAX);
    assert!(w.live(Stamp::at(0), Stamp::at(u64::MAX - 1)));
    assert!(w.live(Stamp::at(u64::MAX - 1), Stamp::at(u64::MAX - 1)));
    let t = Window::Time(u64::MAX);
    assert!(t.live(Stamp::new(0, 0), Stamp::new(0, u64::MAX - 1)));
}

#[test]
fn item_expires_at_exactly_width_steps() {
    // Window::Sequence(w) keeps seq > now - w: an item is live for the w
    // arrivals starting with its own, and expires on arrival w.
    let w = 8u64;
    let mut s = SlidingWindowSampler::try_new(cfg(1), Window::Sequence(w)).unwrap();
    s.process(&item(0.0, 0)); // group 0
    // arrivals 1..w-1 of a far-away group: group 0 must stay sampled-able
    for seq in 1..w {
        s.process(&item(500.0, seq));
        let some_zero = (0..20).any(|_| {
            s.query()
                .is_some_and(|q| q.latest.within(&Point::new(vec![0.0]), 0.5))
        });
        assert!(some_zero, "group 0 expired early at arrival {seq}");
    }
    // arrival seq = w: the seq-0 item leaves the window exactly now
    s.process(&item(500.0, w));
    for _ in 0..20 {
        let q = s.query().expect("window non-empty");
        assert!(
            q.latest.within(&Point::new(vec![500.0]), 0.5),
            "expired group 0 still sampled at the width boundary"
        );
    }
}

#[test]
fn width_one_window_tracks_only_the_newest_item() {
    let mut s = SlidingWindowSampler::try_new(cfg(2), Window::Sequence(1)).unwrap();
    for seq in 0..40u64 {
        let x = (seq % 7) as f64 * 10.0;
        s.process(&item(x, seq));
        let q = s.query().expect("a width-1 window holds the newest item");
        assert!(
            q.latest.within(&Point::new(vec![x]), 0.5),
            "width-1 window sampled a stale item at seq {seq}"
        );
        assert!(s.f0_estimate() >= 1.0);
    }
}

#[test]
fn width_one_f0_estimates_one_entity() {
    let mut est = SlidingWindowF0::try_new(cfg(3), Window::Sequence(1), 1.0).unwrap();
    for seq in 0..32u64 {
        est.process(&item((seq % 5) as f64 * 10.0, seq));
    }
    assert_eq!(est.estimate(), 1.0, "exactly the newest entity is live");
}

#[test]
fn u64_max_width_behaves_like_the_infinite_window() {
    // Regression: building the hierarchy for w = u64::MAX used to push a
    // level-64 instance into `2^level` shift overflow territory.
    let n_entities = 24u64;
    let mut sw = SlidingWindowSampler::try_new(cfg(4), Window::Sequence(u64::MAX)).unwrap();
    let mut inf = RobustL0Sampler::try_new(cfg(4)).unwrap();
    for seq in 0..480u64 {
        let x = (seq % n_entities) as f64 * 10.0 + 0.01 * ((seq / n_entities) % 3) as f64;
        sw.process(&item(x, seq));
        inf.process(&Point::new(vec![x]));
    }
    // nothing ever expires, so the window holds every entity, like the
    // infinite-window sampler (generous default threshold: no levels
    // beyond 0 are occupied and both estimates are exact)
    assert_eq!(sw.f0_estimate(), inf.f0_estimate());
    assert_eq!(sw.f0_estimate(), n_entities as f64);
    assert!(sw.query().is_some());
}

#[test]
fn u64_max_width_f0_matches_the_infinite_estimator() {
    let n_entities = 16u64;
    let mut sw = SlidingWindowF0::try_new(cfg(5), Window::Sequence(u64::MAX), 1.0).unwrap();
    for seq in 0..256u64 {
        sw.process(&item((seq % n_entities) as f64 * 10.0, seq));
    }
    assert_eq!(sw.estimate(), n_entities as f64);
    assert!(sw.fm_estimate() > 0.0);
}

#[test]
fn u64_max_time_window_also_works() {
    let mut s = SlidingWindowSampler::try_new(cfg(6), Window::Time(u64::MAX)).unwrap();
    for seq in 0..64u64 {
        s.process(&StreamItem::new(
            Point::new(vec![(seq % 4) as f64 * 10.0]),
            Stamp::new(seq, seq * 1000),
        ));
    }
    assert_eq!(s.f0_estimate(), 4.0);
}

#[test]
fn time_window_expires_at_exactly_width_time_steps() {
    // Window::Time(w) keeps time > now - w.
    let w = 5u64;
    let mut s = SlidingWindowSampler::try_new(cfg(7), Window::Time(w)).unwrap();
    s.process(&StreamItem::new(Point::new(vec![0.0]), Stamp::new(0, 10)));
    // now = 14: time 10 > 14 - 5 holds, still live
    s.process(&StreamItem::new(Point::new(vec![500.0]), Stamp::new(1, 14)));
    let live_groups: Vec<f64> = s.all_entries().map(|e| e.last.get(0)).collect();
    assert!(live_groups.iter().any(|&x| x < 1.0), "group 0 expired early");
    // now = 15: time 10 == 15 - 5 fails, expires exactly now
    s.process(&StreamItem::new(Point::new(vec![500.0]), Stamp::new(2, 15)));
    let live_groups: Vec<f64> = s.all_entries().map(|e| e.last.get(0)).collect();
    assert!(
        live_groups.iter().all(|&x| x > 400.0),
        "group 0 survived past the width boundary: {live_groups:?}"
    );
}
