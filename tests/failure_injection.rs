//! Failure-injection and edge-case integration tests: boundary geometry,
//! degenerate streams, and the error paths of Algorithm 3.

use rds_core::{
    FixedRateWindowSampler, ProcessOutcome, RobustL0Sampler, SamplerConfig, SlidingWindowSampler,
};
use rds_geometry::Point;
use rds_stream::{Stamp, StreamItem, Window};

#[test]
fn points_exactly_on_cell_boundaries() {
    // grid side = alpha = 1 with zero offsets is impossible through the
    // public API (offsets are random), but integer-coordinate points
    // still regularly land on boundaries of some dimension; hammer that.
    let cfg = SamplerConfig::builder(2, 1.0).seed(4).expected_len(4096).build().unwrap();
    let mut s = RobustL0Sampler::try_new(cfg).unwrap();
    for i in 0..64 {
        for j in 0..64 {
            s.process(&Point::new(vec![i as f64 * 3.0, j as f64 * 3.0]));
        }
    }
    assert!(s.query().is_some());
    // each lattice point is its own group: candidates are pairwise far
    let acc = s.accept_set();
    let rej = s.reject_set();
    let all: Vec<&Point> = acc.iter().chain(rej.iter()).map(|r| &r.rep).collect();
    for i in 0..all.len().min(80) {
        for j in (i + 1)..all.len().min(80) {
            assert!(!all[i].within(all[j], 1.0));
        }
    }
}

#[test]
fn duplicate_only_stream_keeps_one_group() {
    let cfg = SamplerConfig::builder(3, 0.5).seed(5).expected_len(10_000).build().unwrap();
    let mut s = RobustL0Sampler::try_new(cfg).unwrap();
    let base = Point::new(vec![1.0, 2.0, 3.0]);
    for i in 0..10_000u64 {
        let jitter = (i % 7) as f64 * 0.01;
        s.process(&Point::new(vec![1.0 + jitter, 2.0, 3.0]));
    }
    assert_eq!(s.accept_set().len(), 1);
    assert_eq!(s.accept_set()[0].count, 10_000);
    assert!(s.query().expect("non-empty").within(&base, 0.5));
}

#[test]
fn single_point_stream() {
    let cfg = SamplerConfig::builder(1, 0.5).seed(6).build().unwrap();
    let mut s = RobustL0Sampler::try_new(cfg).unwrap();
    assert_eq!(
        s.process(&Point::new(vec![7.5])),
        ProcessOutcome::Accepted,
        "R starts at 1: the first point must be accepted"
    );
    assert_eq!(s.query(), Some(&Point::new(vec![7.5])));
}

#[test]
fn huge_coordinates_do_not_break_the_grid() {
    let cfg = SamplerConfig::builder(2, 0.5).seed(7).expected_len(100).build().unwrap();
    let mut s = RobustL0Sampler::try_new(cfg).unwrap();
    for i in 0..100 {
        s.process(&Point::new(vec![1e12 + i as f64 * 1e9, -1e12]));
    }
    assert!(s.query().is_some());
}

#[test]
fn negative_and_mixed_sign_coordinates() {
    let cfg = SamplerConfig::builder(3, 0.25).seed(8).expected_len(512).build().unwrap();
    let mut s = RobustL0Sampler::try_new(cfg).unwrap();
    for i in 0..512i64 {
        let v = (i - 256) as f64 * 2.0;
        s.process(&Point::new(vec![v, -v, v / 2.0]));
    }
    assert!(s.query().is_some());
}

#[test]
fn window_larger_than_stream_never_expires() {
    let cfg = SamplerConfig::builder(1, 0.5).seed(9).expected_len(64).build().unwrap();
    let mut s = SlidingWindowSampler::try_new(cfg, Window::Sequence(1 << 30)).unwrap();
    for i in 0..64u64 {
        s.process(&StreamItem::new(
            Point::new(vec![i as f64 * 10.0]),
            Stamp::at(i),
        ));
    }
    // the Horvitz-Thompson estimate is exact only while no split has
    // happened; with threshold ~24 the 64 groups cascade once, so allow
    // the sampling noise of one level
    let est = s.f0_estimate();
    assert!(
        (32.0..=128.0).contains(&est),
        "estimate {est} far from 64 despite no expiry"
    );
    assert!(s.query().is_some());
}

#[test]
fn time_gaps_expire_everything_at_once() {
    let cfg = SamplerConfig::builder(1, 0.5).seed(10).expected_len(64).build().unwrap();
    let mut s = SlidingWindowSampler::try_new(cfg, Window::Time(5)).unwrap();
    for i in 0..32u64 {
        s.process(&StreamItem::new(
            Point::new(vec![i as f64 * 10.0]),
            Stamp::new(i, 0),
        ));
    }
    // a huge time gap: the whole window dies except the new point
    s.process(&StreamItem::new(
        Point::new(vec![777.0]),
        Stamp::new(32, 1_000_000),
    ));
    let q = s.query().expect("newest point is live");
    assert_eq!(q.latest, Point::new(vec![777.0]));
    assert_eq!(s.f0_estimate() as u64, 1);
}

#[test]
fn overflow_error_path_is_survivable() {
    // Force the Algorithm 3 "error" branch: a tiny window (few levels)
    // with an absurdly small threshold and many groups per window.
    let cfg = SamplerConfig::builder(1, 0.5)
        .seed(11)
        .expected_len(4) // tiny m => threshold ~ kappa0 * 2
        .kappa0(0.1)
        .build()
        .unwrap();
    let mut s = SlidingWindowSampler::try_new(cfg, Window::Sequence(8)).unwrap();
    for i in 0..2000u64 {
        s.process(&StreamItem::new(
            Point::new(vec![(i % 64) as f64 * 10.0]),
            Stamp::at(i),
        ));
        // even past the error event the sampler keeps answering
        assert!(s.query().is_some(), "query failed at step {i}");
    }
    assert!(
        s.overflow_errors() > 0,
        "test setup should have triggered the top-level overflow"
    );
}

#[test]
fn fixed_rate_sampler_survives_empty_windows() {
    let cfg = SamplerConfig::builder(1, 0.5).seed(12).expected_len(64).build().unwrap();
    let mut s = FixedRateWindowSampler::new(cfg, Window::Time(1), 0);
    s.process(&StreamItem::new(Point::new(vec![0.0]), Stamp::new(0, 0)));
    // time jumps; the window (t-1, t] is empty before the next arrival
    s.process(&StreamItem::new(Point::new(vec![10.0]), Stamp::new(1, 50)));
    assert_eq!(s.entries().len(), 1);
    assert_eq!(
        s.query().expect("one live group").last,
        Point::new(vec![10.0])
    );
}

#[test]
fn zero_variance_dataset_with_alpha_larger_than_extent() {
    // alpha so large the whole stream is one group
    let cfg = SamplerConfig::builder(2, 1e6).seed(13).expected_len(256).build().unwrap();
    let mut s = RobustL0Sampler::try_new(cfg).unwrap();
    for i in 0..256 {
        s.process(&Point::new(vec![i as f64, -(i as f64)]));
    }
    assert_eq!(s.accept_set().len() + s.reject_set().len(), 1);
}

#[test]
fn query_reflects_stream_growth() {
    // as new far-away groups arrive, old samples stay possible and new
    // ones become possible: check support growth via repeated queries
    let cfg = SamplerConfig::builder(1, 0.5).seed(14).expected_len(32).build().unwrap();
    let mut s = RobustL0Sampler::try_new(cfg).unwrap();
    s.process(&Point::new(vec![0.0]));
    let mut seen_new = false;
    s.process(&Point::new(vec![100.0]));
    for _ in 0..200 {
        if s.query() == Some(&Point::new(vec![100.0])) {
            seen_new = true;
            break;
        }
    }
    assert!(seen_new, "new group never sampled in 200 queries");
}
