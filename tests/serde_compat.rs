//! Serde-compatibility acceptance suite for the copy-on-write summary
//! layout: checkpoint containers and snapshot JSON written by the
//! pre-CoW build (fixtures under `tests/fixtures/pre_cow/`, generated
//! before `MergedSummary`/`WindowSummary` moved their candidate sets
//! behind `Arc` handles) must still restore — and re-serialize
//! **bit-identically** — under the current build. `Arc`-backed levels
//! serialize transparently; nothing about the JSON shape changed.

use rds_core::GroupRecord;
use rds_geometry::Point;
use rds_stream::{Stamp, StreamItem, Window};
use robust_distinct_sampling::{PublishCadence, Rds, Snapshot, WriterCheckpoint};

fn assert_same_records(a: &[GroupRecord], b: &[GroupRecord], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: sample count diverged");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.rep, y.rep, "{what}: representative diverged");
        assert_eq!(x.count, y.count, "{what}: group count diverged");
        assert_eq!(x.cell_hash, y.cell_hash, "{what}: cell hash diverged");
    }
}

/// The exact stream the fixtures were generated from (see the fixture
/// README note in this directory's git history): 24 entities with
/// near-duplicate jitter, 4 items per time step.
fn item(i: u64, n_entities: u64) -> StreamItem {
    let e = i % n_entities;
    let jitter = 0.01 * ((i / n_entities) % 5) as f64;
    StreamItem::new(
        Point::new(vec![e as f64 * 10.0 + jitter, e as f64]),
        Stamp::new(i, i / 4),
    )
}

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/pre_cow")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn variants() -> Vec<(&'static str, Window, usize)> {
    vec![
        ("infinite-1", Window::Infinite, 1),
        ("infinite-3", Window::Infinite, 3),
        ("seq64-1", Window::Sequence(64), 1),
        ("seq64-3", Window::Sequence(64), 3),
        ("time16-1", Window::Time(16), 1),
        ("time16-3", Window::Time(16), 3),
    ]
}

/// A fresh pair over the fixture stream, for behavioral comparison.
fn fresh_reference(window: Window, shards: usize) -> std::sync::Arc<Snapshot> {
    let (mut w, r) = Rds::builder()
        .dim(2)
        .alpha(0.5)
        .seed(23)
        .expected_len(1 << 11)
        .window(window)
        .shards(shards)
        .publish_cadence(PublishCadence::Manual)
        .build_split()
        .expect("valid configuration");
    for i in 0..120 {
        w.process_item(item(i, 24));
    }
    w.publish();
    r.snapshot()
}

#[test]
fn pre_cow_checkpoints_restore_and_recheckpoint_bit_identically() {
    for (name, window, shards) in variants() {
        let text = fixture(&format!("checkpoint-{name}.json"));
        let chk = WriterCheckpoint::from_container_json(&text)
            .unwrap_or_else(|e| panic!("{name}: pre-CoW checkpoint rejected: {e}"));
        let (mut writer, reader) = Rds::builder()
            .restore(chk)
            .unwrap_or_else(|e| panic!("{name}: restore failed: {e}"));

        // Bit-identical round trip first (before `publish` bumps the
        // epoch): the restored sampler state re-serializes to exactly
        // the bytes the pre-CoW build wrote.
        let rewritten = writer.checkpoint().to_container_json();
        assert_eq!(
            rewritten, text,
            "{name}: re-serialized checkpoint is not bit-identical to the pre-CoW container"
        );

        // The restored pair answers exactly like an uninterrupted run.
        let reference = fresh_reference(window, shards);
        writer.publish();
        let restored = reader.snapshot();
        assert_eq!(restored.seen(), reference.seen(), "{name}: seen diverged");
        assert_eq!(
            restored.f0_estimate(),
            reference.f0_estimate(),
            "{name}: f0 diverged"
        );
        for draw in [1u64, 7, 42] {
            assert_same_records(
                &restored.query_k_at(5, draw),
                &reference.query_k_at(5, draw),
                &format!("{name} restored, draw {draw}"),
            );
        }
    }
}

#[test]
fn pre_cow_snapshots_deserialize_and_reserialize_bit_identically() {
    for (name, window, shards) in variants() {
        let text = fixture(&format!("snapshot-{name}.json"));
        let snap: Snapshot = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{name}: pre-CoW snapshot rejected: {e}"));

        let reference = fresh_reference(window, shards);
        assert_eq!(snap.epoch(), reference.epoch(), "{name}: epoch diverged");
        assert_eq!(snap.seen(), reference.seen(), "{name}: seen diverged");
        assert_eq!(
            snap.f0_estimate(),
            reference.f0_estimate(),
            "{name}: f0 diverged"
        );
        for draw in [1u64, 7, 42] {
            assert_same_records(
                &snap.query_k_at(5, draw),
                &reference.query_k_at(5, draw),
                &format!("{name} snapshot, draw {draw}"),
            );
        }

        // Arc-backed levels serialize transparently: same bytes out.
        let rewritten = serde_json::to_string(&snap).expect("snapshot serializes");
        assert_eq!(
            rewritten, text,
            "{name}: re-serialized snapshot is not bit-identical to the pre-CoW JSON"
        );
    }
}
