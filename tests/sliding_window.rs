//! Integration tests of the sliding-window samplers against brute-force
//! window recomputation, in both window models (Theorem 2.7 end to end).

use rds_core::{FixedRateWindowSampler, SamplerConfig, SlidingWindowSampler};
use rds_datasets::{rand_cloud, uniform_dups};
use rds_stream::{Stamp, StreamItem, Window};

/// Noisy labelled stream: groups cycle, several near-duplicates each.
fn noisy_stream(seed: u64, len: usize) -> (Vec<StreamItem>, Vec<usize>, f64) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let base = rand_cloud(24, 3, &mut rng);
    let mut ds = uniform_dups("sw", &base, 6, &mut rng);
    ds.shuffle(&mut rng);
    // tile the dataset until `len`
    let mut items = Vec::with_capacity(len);
    let mut labels = Vec::with_capacity(len);
    let mut i = 0usize;
    while items.len() < len {
        let lp = &ds.points[i % ds.len()];
        items.push(StreamItem::new(lp.point.clone(), Stamp::at(items.len() as u64)));
        labels.push(lp.group);
        i += 1;
    }
    (items, labels, ds.alpha)
}

/// Ground-truth set of groups with a live point in the sequence window.
fn live_groups(labels: &[usize], now: usize, w: u64) -> Vec<usize> {
    let lo = (now + 1).saturating_sub(w as usize);
    let mut gs: Vec<usize> = labels[lo..=now].to_vec();
    gs.sort_unstable();
    gs.dedup();
    gs
}

#[test]
fn hierarchical_sampler_tracks_only_live_groups() {
    let (items, labels, alpha) = noisy_stream(1, 600);
    let w = 64u64;
    let cfg = SamplerConfig::builder(3, alpha)
        .seed(5)
        .expected_len(items.len() as u64).build().unwrap();
    let mut s = SlidingWindowSampler::try_new(cfg, Window::Sequence(w)).unwrap();
    for (i, it) in items.iter().enumerate() {
        s.process(it);
        if i % 17 == 0 {
            let live = live_groups(&labels, i, w);
            let q = s.query().expect("window non-empty");
            // the sampled latest point must belong to a live group:
            // find its stream position by exact identity
            let pos = items[..=i]
                .iter()
                .rposition(|x| x.point == q.latest)
                .expect("sample from stream");
            assert!(
                live.contains(&labels[pos]),
                "sampled dead group at step {i}"
            );
            assert!(
                items[pos].stamp.seq + w > i as u64,
                "sampled expired point at step {i}"
            );
        }
    }
}

#[test]
fn fixed_rate_level0_equals_brute_force_group_set() {
    // At rate 1, Algorithm 2 tracks *exactly* the live groups.
    let (items, labels, alpha) = noisy_stream(2, 400);
    let w = 48u64;
    let cfg = SamplerConfig::builder(3, alpha)
        .seed(7)
        .expected_len(items.len() as u64).build().unwrap();
    let mut s = FixedRateWindowSampler::new(cfg, Window::Sequence(w), 0);
    for (i, it) in items.iter().enumerate() {
        s.process(it);
        let live = live_groups(&labels, i, w);
        assert_eq!(
            s.entries().len(),
            live.len(),
            "tracked {} vs live {} at step {i}",
            s.entries().len(),
            live.len()
        );
        assert_eq!(s.accepted_len(), live.len(), "rate 1 accepts everything");
    }
}

#[test]
fn time_window_expires_by_timestamp_not_position() {
    let (items, _, alpha) = noisy_stream(3, 200);
    // re-stamp: 10 items per second
    let timed: Vec<StreamItem> = items
        .iter()
        .enumerate()
        .map(|(i, it)| StreamItem::new(it.point.clone(), Stamp::new(i as u64, (i / 10) as u64)))
        .collect();
    let cfg = SamplerConfig::builder(3, alpha)
        .seed(9)
        .expected_len(timed.len() as u64).build().unwrap();
    let mut s = SlidingWindowSampler::try_new(cfg, Window::Time(3)).unwrap();
    for it in &timed {
        s.process(it);
    }
    let now = timed.last().expect("non-empty").stamp;
    let q = s.query().expect("non-empty");
    // locate the sampled point and check its timestamp liveness
    let pos = timed
        .iter()
        .rposition(|x| x.point == q.latest)
        .expect("from stream");
    assert!(timed[pos].stamp.time + 3 > now.time);
}

#[test]
fn window_of_one_returns_the_last_point() {
    let (items, _, alpha) = noisy_stream(4, 100);
    let cfg = SamplerConfig::builder(3, alpha)
        .seed(11)
        .expected_len(items.len() as u64).build().unwrap();
    let mut s = SlidingWindowSampler::try_new(cfg, Window::Sequence(1)).unwrap();
    for it in &items {
        s.process(it);
        let q = s.query().expect("non-empty");
        assert_eq!(q.latest, it.point, "window of 1 must return the newest point");
    }
}

#[test]
fn massive_window_behaves_like_infinite_window() {
    // a window larger than the stream: the sliding sampler must cover the
    // same candidate groups as Algorithm 1 reaches (both track all groups
    // here thanks to the generous threshold)
    let (items, labels, alpha) = noisy_stream(5, 300);
    let cfg = SamplerConfig::builder(3, alpha)
        .seed(13)
        .expected_len(items.len() as u64).build().unwrap();
    let mut sw = SlidingWindowSampler::try_new(cfg, Window::Sequence(1 << 20)).unwrap();
    for it in &items {
        sw.process(it);
    }
    let truth: std::collections::BTreeSet<usize> = labels.iter().copied().collect();
    assert_eq!(sw.f0_estimate() as usize, truth.len());
}

#[test]
fn stressed_sampler_never_misses_a_query() {
    // Lemma 2.10 under cascades: tight thresholds, many groups cycling
    let (items, _, alpha) = noisy_stream(6, 1500);
    let cfg = SamplerConfig::builder(3, alpha)
        .seed(17)
        .expected_len(items.len() as u64)
        .kappa0(0.5).build().unwrap();
    let mut s = SlidingWindowSampler::try_new(cfg, Window::Sequence(128)).unwrap();
    for it in &items {
        s.process(it);
        assert!(s.query().is_some(), "query failed mid-stream");
    }
}
