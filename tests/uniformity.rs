//! Statistical test of sample uniformity: over many independently seeded
//! runs on a known entity partition, the per-entity sampling frequency
//! must stay within the `rds-metrics` deviation bounds (`stdDevNm`,
//! `maxDevNm`) the paper's Section 6 evaluation uses.

use rds_core::{RobustL0Sampler, SamplerConfig};
use rds_geometry::Point;
use rds_metrics::SampleHistogram;

/// A fixed stream over `n_entities` known entities: entity `e` occupies
/// points `e*10 ± jitter`, so the ground-truth partition is
/// `entity_of(p) = round(p.x / 10)`.
fn known_partition_stream(n_points: u64, n_entities: u64) -> Vec<Point> {
    (0..n_points)
        .map(|i| {
            let e = i % n_entities;
            Point::new(vec![e as f64 * 10.0 + 0.02 * ((i / n_entities) % 10) as f64])
        })
        .collect()
}

fn entity_of(p: &Point) -> usize {
    (p.get(0) / 10.0).round() as usize
}

#[test]
fn per_entity_deviation_stays_within_the_std_dev_nm_bound() {
    let n_entities = 20u64;
    let points = known_partition_stream(400, n_entities);
    let runs = 600u64;
    let mut hist = SampleHistogram::new(n_entities as usize);
    for run in 0..runs {
        let cfg = SamplerConfig::builder(1, 0.5)
            .seed(run * 6151 + 3)
            .expected_len(points.len() as u64)
            .kappa0(1.0).build().unwrap(); // tight threshold: rate doublings do occur
        let mut s = RobustL0Sampler::try_new(cfg).unwrap();
        s.process_batch(&points);
        let sample = s.query().expect("stream non-empty").clone();
        hist.record(entity_of(&sample));
    }
    assert_eq!(hist.runs(), runs);
    // With 600 runs over 20 entities, uniform sampling gives
    // stdDevNm ~ sqrt(F0/runs) ~ 0.18; 0.45 leaves ample slack while
    // still rejecting any systematically favoured entity.
    assert!(
        hist.std_dev_nm() < 0.45,
        "stdDevNm {} out of bound; counts {:?}",
        hist.std_dev_nm(),
        hist.counts()
    );
    assert!(
        hist.max_dev_nm() < 1.5,
        "maxDevNm {} out of bound; counts {:?}",
        hist.max_dev_nm(),
        hist.counts()
    );
    // every entity must actually be sampled at least once
    assert!(
        hist.counts().iter().all(|&c| c > 0),
        "an entity was never sampled: {:?}",
        hist.counts()
    );
}
