//! Property-based tests (proptest) of sampler-state checkpointing: for
//! random configurations, streams and split points,
//! `checkpoint_state → JSON → try_from_state → continue` must equal the
//! uninterrupted sampler for **every** `DistinctSampler` family — same
//! estimates, same candidate structure, and same query draws (the PRNG
//! position survives the round trip). Plus: arbitrarily truncated or
//! mutated container files always yield typed errors, never panics.

use proptest::prelude::*;
use robust_distinct_sampling::core::{
    Checkpointable, DistinctSampler, JlRobustSampler, KDistinctSampler, KWithReplacementSampler,
    MetricRobustSampler, RdsError, RobustL0Sampler, SamplerConfig, SimHashPartitioner,
    SlidingWindowSampler,
};
use robust_distinct_sampling::core::FixedRateWindowSampler;
use robust_distinct_sampling::{PublishCadence, Rds, WriterCheckpoint};
use rds_geometry::Point;
use rds_stream::{Stamp, StreamItem, Window};

fn cfg(seed: u64, n: u64) -> SamplerConfig {
    SamplerConfig::builder(1, 0.5)
        .seed(seed)
        .expected_len(n.max(4))
        .kappa0(1.0) // tight threshold: checkpoints cover real subsampling
        .build()
        .unwrap()
}

fn stream(n: u64, n_entities: u64) -> Vec<StreamItem> {
    (0..n)
        .map(|i| {
            let e = i % n_entities.max(1);
            StreamItem::new(
                Point::new(vec![e as f64 * 10.0 + 0.01 * ((i / 7) % 5) as f64]),
                Stamp::new(i, i / 3),
            )
        })
        .collect()
}

/// Feeds `items[..split]`, round-trips the sampler through JSON, feeds
/// the rest into both the original and the restored copy, and asserts
/// the two are observationally identical (estimates, counters, words,
/// and a run of owned query draws that consume the live RNG).
fn assert_family_round_trips<S>(mut original: S, items: &[StreamItem], split: usize)
where
    S: DistinctSampler + Checkpointable,
{
    for it in &items[..split] {
        original.process(it);
    }
    let wire = serde_json::to_string(&original.checkpoint_state()).expect("state serializes");
    let state = serde_json::from_str(&wire).expect("state deserializes");
    let mut restored = S::try_from_state(state).expect("state restores");
    for it in &items[split..] {
        original.process(it);
        restored.process(it);
    }
    prop_assert_eq_outside_closure(original.f0_estimate(), restored.f0_estimate());
    assert_eq!(original.seen(), restored.seen(), "arrival counters diverged");
    assert_eq!(original.words(), restored.words(), "candidate structure diverged");
    for draw in 0..4 {
        let a = original.query_record();
        let b = restored.query_record();
        assert_eq!(
            a.as_ref().map(|r| &r.rep),
            b.as_ref().map(|r| &r.rep),
            "draw {draw}: the PRNG position did not survive the round trip"
        );
        assert_eq!(a.map(|r| r.count), b.map(|r| r.count), "draw {draw}: counts");
    }
}

/// `prop_assert_eq!` needs the proptest macro context; plain helper for
/// use inside a shared fn.
fn prop_assert_eq_outside_closure(a: f64, b: f64) {
    assert!(
        a == b,
        "estimates diverged after restore: {a} vs {b} (must be bit-identical)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn infinite_window_family_round_trips(
        seed in 0u64..1000,
        n in 50u64..400,
        n_entities in 2u64..60,
        split_pct in 1usize..99,
    ) {
        let items = stream(n, n_entities);
        let split = items.len() * split_pct / 100;
        assert_family_round_trips(
            RobustL0Sampler::try_new(cfg(seed, n)).unwrap(),
            &items,
            split,
        );
    }

    #[test]
    fn sliding_window_family_round_trips(
        seed in 0u64..1000,
        n in 50u64..400,
        n_entities in 2u64..60,
        split_pct in 1usize..99,
        w in 1u64..256,
        time_flag in 0u8..2,
    ) {
        let items = stream(n, n_entities);
        let split = items.len() * split_pct / 100;
        let window = if time_flag == 1 { Window::Time(w) } else { Window::Sequence(w) };
        assert_family_round_trips(
            SlidingWindowSampler::try_new(cfg(seed, n), window).unwrap(),
            &items,
            split,
        );
    }

    #[test]
    fn fixed_rate_window_family_round_trips(
        seed in 0u64..1000,
        n in 50u64..300,
        n_entities in 2u64..60,
        split_pct in 1usize..99,
        w in 1u64..256,
        level in 0u32..4,
    ) {
        let items = stream(n, n_entities);
        let split = items.len() * split_pct / 100;
        assert_family_round_trips(
            FixedRateWindowSampler::new(cfg(seed, n), Window::Sequence(w), level),
            &items,
            split,
        );
    }

    #[test]
    fn k_distinct_family_round_trips(
        seed in 0u64..1000,
        n in 50u64..300,
        n_entities in 2u64..60,
        split_pct in 1usize..99,
        k in 1usize..6,
    ) {
        let items = stream(n, n_entities);
        let split = items.len() * split_pct / 100;
        assert_family_round_trips(
            KDistinctSampler::try_new(cfg(seed, n), k).unwrap(),
            &items,
            split,
        );
    }

    #[test]
    fn metric_family_round_trips(
        seed in 0u64..1000,
        n in 40u64..200,
        n_entities in 2u64..20,
        split_pct in 1usize..99,
    ) {
        // unit vectors clustered by entity: the angular-metric workload
        let dim = 8usize;
        let items: Vec<StreamItem> = (0..n)
            .map(|i| {
                let e = (i % n_entities) as usize;
                let mut v = vec![0.05; dim];
                v[e % dim] = 10.0 + (e / dim) as f64 * 5.0;
                v[(e + 1) % dim] += 0.001 * ((i / 7) % 3) as f64;
                StreamItem::new(Point::new(v), Stamp::at(i))
            })
            .collect();
        let split = items.len() * split_pct / 100;
        let part = SimHashPartitioner::try_new(dim, 10, 0.05, seed ^ 0xA5).unwrap();
        assert_family_round_trips(
            MetricRobustSampler::try_new(part, 16, seed).unwrap(),
            &items,
            split,
        );
    }

    #[test]
    fn jl_family_round_trips(
        seed in 0u64..1000,
        n in 40u64..200,
        n_entities in 2u64..20,
        split_pct in 1usize..99,
    ) {
        let dim = 48usize;
        let items: Vec<StreamItem> = (0..n)
            .map(|i| {
                let e = (i % n_entities) as usize;
                let mut v = vec![0.0; dim];
                v[e % dim] = 100.0 * (1.0 + (e / dim) as f64);
                v[(e + 3) % dim] = 0.001 * ((i / 5) % 4) as f64;
                StreamItem::new(Point::new(v), Stamp::at(i))
            })
            .collect();
        let split = items.len() * split_pct / 100;
        let base = SamplerConfig::builder(dim, 0.5)
            .seed(seed)
            .expected_len(n.max(4))
            .build()
            .unwrap();
        assert_family_round_trips(
            JlRobustSampler::try_new(dim, 0.5, 0.5, base).unwrap(),
            &items,
            split,
        );
    }

    /// Truncating a valid container at ANY byte yields a typed
    /// [`RdsError::Checkpoint`] — never a panic, never an `Ok`.
    #[test]
    fn truncated_containers_never_panic(
        cut_pct in 0usize..100,
        seed in 0u64..100,
    ) {
        let (mut writer, _) = Rds::builder()
            .dim(1)
            .alpha(0.5)
            .seed(seed)
            .publish_cadence(PublishCadence::Manual)
            .build_split()
            .unwrap();
        for i in 0..40u64 {
            writer.process(Point::new(vec![(i % 4) as f64 * 10.0]));
        }
        let good = writer.checkpoint().to_container_json();
        let cut = good.len() * cut_pct / 100;
        // cut on a char boundary (the container is ASCII, but stay safe)
        let cut = (0..=cut).rev().find(|&c| good.is_char_boundary(c)).unwrap_or(0);
        let result = WriterCheckpoint::from_container_json(&good[..cut]);
        prop_assert!(
            matches!(result, Err(RdsError::Checkpoint { .. })),
            "truncation at byte {cut} of {} produced {result:?}",
            good.len()
        );
    }

    /// Flipping any single byte of the payload either fails the checksum
    /// or (for bytes in the header) another typed container check —
    /// never a panic, and never a silently-accepted altered payload.
    #[test]
    fn mutated_containers_never_panic(
        pos_pct in 0usize..100,
        replacement in 0u8..128,
        seed in 0u64..100,
    ) {
        let (mut writer, _) = Rds::builder()
            .dim(1)
            .alpha(0.5)
            .seed(seed)
            .publish_cadence(PublishCadence::Manual)
            .build_split()
            .unwrap();
        for i in 0..40u64 {
            writer.process(Point::new(vec![(i % 4) as f64 * 10.0]));
        }
        let good = writer.checkpoint().to_container_json();
        let mut bytes = good.clone().into_bytes();
        let pos = (bytes.len() - 1) * pos_pct / 100;
        if bytes[pos] == replacement {
            // not a mutation; nothing to assert
            return;
        }
        bytes[pos] = replacement;
        let Ok(text) = String::from_utf8(bytes) else { return };
        match WriterCheckpoint::from_container_json(&text) {
            Err(RdsError::Checkpoint { .. }) => {}
            Err(other) => prop_assert!(false, "non-checkpoint error {other:?}"),
            Ok(back) => {
                // the only acceptable `Ok` is a mutation that does not
                // change the parsed container (e.g. flipping whitespace
                // — our writer emits none, but keep the property honest)
                prop_assert_eq!(back.to_container_json(), good);
            }
        }
    }
}

#[test]
fn k_with_replacement_round_trips() {
    // Not a DistinctSampler (it returns k parallel samples), so it gets
    // a direct test instead of the shared harness.
    let items = stream(200, 20);
    let mut original = KWithReplacementSampler::try_new(cfg(9, 200), 3).unwrap();
    for it in &items[..120] {
        original.process(&it.point);
    }
    let wire = serde_json::to_string(&original.checkpoint_state()).expect("serializes");
    let state = serde_json::from_str(&wire).expect("deserializes");
    let mut restored = KWithReplacementSampler::try_from_state(state).expect("restores");
    for it in &items[120..] {
        original.process(&it.point);
        restored.process(&it.point);
    }
    assert_eq!(original.sample(), restored.sample(), "per-copy draws must replay");
    assert_eq!(original.k(), restored.k());
}
