//! Cross-crate property-based tests (proptest) of the invariants the
//! paper's analysis relies on.

use proptest::prelude::*;
use rds_core::{RobustL0Sampler, SamplerConfig, SlidingWindowSampler};
use rds_datasets::partition;
use rds_geometry::{adjacent_cells, adjacent_cells_bfs, Grid, Point};
use rds_hashing::{level_sampled, CellHasher};
use rds_stream::{Stamp, StreamItem, Window};
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithms 6/7 (pruned DFS) agree with the flood-fill oracle for
    /// every grid, point and alpha with side >= alpha.
    #[test]
    fn adjacency_dfs_equals_oracle(
        dim in 1usize..5,
        side in 0.2f64..3.0,
        alpha_frac in 0.05f64..1.0,
        seed in 0u64..1000,
        coords in prop::collection::vec(-20.0..20.0f64, 4),
    ) {
        let alpha = side * alpha_frac;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let grid = Grid::random(dim, side, &mut rng);
        let p = Point::new(coords[..dim].to_vec());
        let dfs: BTreeSet<Vec<i64>> = adjacent_cells(&grid, &p, alpha)
            .into_iter().map(|c| c.to_vec()).collect();
        let oracle: BTreeSet<Vec<i64>> = adjacent_cells_bfs(&grid, &p, alpha)
            .into_iter().map(|c| c.to_vec()).collect();
        prop_assert_eq!(dfs, oracle);
    }

    /// Fact 1(b): the sampled cell sets are nested across rates.
    #[test]
    fn sampled_sets_nest(seed in 0u64..500, x in -1000i64..1000, y in -1000i64..1000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let hasher = CellHasher::new(8, &mut rng);
        let h = hasher.hash_cell(&[x, y]);
        for level in 1..20u32 {
            if level_sampled(h, level) {
                prop_assert!(level_sampled(h, level - 1));
            }
        }
    }

    /// Lemma 3.3: on arbitrary 1-D point sets, greedy partitions never
    /// use more groups than the optimum, and the optimum is at most a
    /// constant factor larger.
    #[test]
    fn greedy_partition_vs_optimal(
        xs in prop::collection::vec(-10.0..10.0f64, 1..9),
        alpha in 0.1f64..3.0,
    ) {
        let pts: Vec<Point> = xs.iter().map(|&x| Point::new(vec![x])).collect();
        let gdy = partition::partition_size(&partition::greedy_partition(&pts, alpha));
        let opt = partition::min_partition_size_brute(&pts, alpha);
        prop_assert!(gdy <= opt, "greedy {} > optimal {}", gdy, opt);
        // in 1-D a greedy ball (diameter 2*alpha) intersects at most 3
        // optimal groups
        prop_assert!(opt <= 3 * gdy, "optimal {} >> greedy {}", opt, gdy);
    }

    /// Algorithm 1 on arbitrary well-separated streams: the accept set
    /// never exceeds its threshold (after processing), holds pairwise-far
    /// representatives, and is non-empty as long as no rate doubling has
    /// occurred (Lemma 2.5's guarantee is only probabilistic once R > 1,
    /// and with this deliberately tiny threshold the 2^-threshold tail is
    /// reachable — proptest found it).
    #[test]
    fn infinite_sampler_invariants(
        seed in 0u64..300,
        group_ids in prop::collection::vec(0u8..12, 1..120),
    ) {
        let alpha = 0.5;
        let cfg = SamplerConfig::builder(2, alpha)
            .seed(seed)
            .expected_len(group_ids.len() as u64)
            .kappa0(1.0).build().unwrap();
        let mut s = RobustL0Sampler::try_new(cfg).unwrap();
        for (i, &g) in group_ids.iter().enumerate() {
            // groups on a coarse lattice; members jitter within alpha/2
            let jitter = (i % 5) as f64 * 0.05;
            let p = Point::new(vec![g as f64 * 10.0 + jitter, 0.0]);
            s.process(&p);
            if s.level() == 0 {
                // R = 1: every first point is accepted deterministically
                prop_assert!(!s.accept_set().is_empty());
            }
        }
        prop_assert!(s.accept_set().len() <= s.threshold());
        let acc = s.accept_set();
        let rej = s.reject_set();
        let reps: Vec<&Point> = acc.iter().chain(rej.iter()).map(|r| &r.rep).collect();
        for i in 0..reps.len() {
            for j in (i + 1)..reps.len() {
                prop_assert!(!reps[i].within(reps[j], alpha));
            }
        }
        // any returned sample must be a stored representative
        if let Some(q) = s.query().cloned() {
            prop_assert!(s.accept_set().iter().any(|r| r.rep == q));
        } else {
            // empty accept set is only reachable through resampling
            prop_assert!(s.rate_doublings() > 0);
        }
    }

    /// Algorithm 3 on arbitrary streams: a non-empty window always yields
    /// a sample and the sample is always a live point (Lemma 2.10 +
    /// Theorem 2.7 support).
    #[test]
    fn sliding_sampler_invariants(
        seed in 0u64..200,
        group_ids in prop::collection::vec(0u8..10, 1..100),
        w in 1u64..40,
    ) {
        let alpha = 0.5;
        let cfg = SamplerConfig::builder(1, alpha)
            .seed(seed)
            .expected_len(group_ids.len() as u64)
            .kappa0(0.75).build().unwrap();
        let mut s = SlidingWindowSampler::try_new(cfg, Window::Sequence(w)).unwrap();
        let pts: Vec<Point> = group_ids
            .iter()
            .enumerate()
            .map(|(i, &g)| Point::new(vec![g as f64 * 10.0 + (i % 4) as f64 * 0.1]))
            .collect();
        for (i, p) in pts.iter().enumerate() {
            s.process(&StreamItem::new(p.clone(), Stamp::at(i as u64)));
            let q = s.query();
            prop_assert!(q.is_some(), "no sample at step {}", i);
            let q = q.expect("checked");
            // the latest point must be live: it appears among the last w
            // stream points
            let lo = (i + 1).saturating_sub(w as usize);
            prop_assert!(
                pts[lo..=i].contains(&q.latest),
                "expired sample at step {}", i
            );
        }
    }

    /// The greedy partition never assigns two points within alpha of a
    /// common center to different groups when one is the center.
    #[test]
    fn greedy_partition_is_a_valid_cover(
        xs in prop::collection::vec(-10.0..10.0f64, 1..20),
        alpha in 0.1f64..2.0,
    ) {
        let pts: Vec<Point> = xs.iter().map(|&x| Point::new(vec![x])).collect();
        let labels = partition::greedy_partition(&pts, alpha);
        // every group has diameter at most 2*alpha (a ball of radius alpha)
        let n_groups = partition::partition_size(&labels);
        for g in 0..n_groups {
            let members: Vec<&Point> = pts
                .iter()
                .zip(labels.iter())
                .filter(|(_, &l)| l == g)
                .map(|(p, _)| p)
                .collect();
            for a in &members {
                for b in &members {
                    prop_assert!(a.distance(b) <= 2.0 * alpha + 1e-9);
                }
            }
        }
    }
}
