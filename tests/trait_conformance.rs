//! Trait-conformance suite: one parameterized harness runs the same
//! stream through every [`DistinctSampler`] implementation — the six
//! sampler families — and checks the shared contract:
//!
//! * `f0_estimate` agrees with the ground truth within a per-family
//!   tolerance (exactly, for the generous-threshold configurations here);
//! * summaries merge order-insensitively: `merge(a, merge(b, c))` and
//!   `merge(merge(c, a), b)` report the same estimate, and a merged
//!   3-way shard split agrees with the unsharded run;
//! * edge cases: the empty stream yields `query_record() == None`,
//!   `f0_estimate() == 0`, and `query_k(0)` is always empty.

use rds_core::{
    DistinctSampler, FixedRateWindowSampler, JlRobustSampler, KDistinctSampler,
    MetricRobustSampler, RobustL0Sampler, SamplerConfig, SamplerSummary, SimHashPartitioner,
    SlidingWindowSampler,
};
use rds_geometry::{standard_normal, Point};
use rds_stream::{Stamp, StreamItem, Window};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const N_GROUPS: usize = 12;
const PER_GROUP: usize = 8;

/// Well-separated Euclidean groups in `R^dim` with within-alpha jitter,
/// interleaved as a stamped stream.
fn euclidean_stream(dim: usize, seed: u64) -> Vec<StreamItem> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut items = Vec::new();
    for j in 0..PER_GROUP {
        for g in 0..N_GROUPS {
            let mut coords = vec![0.0; dim];
            coords[g % dim] = 50.0 * (1 + g / dim) as f64;
            for c in coords.iter_mut() {
                *c += 0.05 * rng.random_range(0.0..1.0);
            }
            let seq = (j * N_GROUPS + g) as u64;
            items.push(StreamItem::new(Point::new(coords), Stamp::at(seq)));
        }
    }
    items
}

/// Groups of near-identical directions for the angular metric.
fn angular_stream(dim: usize, seed: u64) -> Vec<StreamItem> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Point> = (0..N_GROUPS)
        .map(|_| {
            let v = Point::new((0..dim).map(|_| standard_normal(&mut rng)).collect());
            v.scale(1.0 / v.norm())
        })
        .collect();
    let mut items = Vec::new();
    for j in 0..PER_GROUP {
        for (g, c) in centers.iter().enumerate() {
            let noise = Point::new(
                (0..dim)
                    .map(|_| standard_normal(&mut rng) * 0.002)
                    .collect(),
            );
            let v = c.add(&noise);
            let seq = (j * N_GROUPS + g) as u64;
            items.push(StreamItem::new(
                v.scale(1.0 / v.norm()),
                Stamp::at(seq),
            ));
        }
    }
    items
}

/// The conformance harness: every family goes through the same checks.
fn check_family<S, F>(label: &str, mut make: F, stream: &[StreamItem], truth: f64, tol: f64)
where
    S: DistinctSampler,
    S::Summary: Clone,
    F: FnMut() -> S,
{
    // -- empty-stream edge cases ---------------------------------------
    let mut empty = make();
    assert!(
        empty.query_record().is_none(),
        "{label}: empty stream must yield no sample"
    );
    assert_eq!(empty.f0_estimate(), 0.0, "{label}: empty stream f0");
    assert!(empty.query_k(0).is_empty(), "{label}: query_k(0) on empty");
    assert!(empty.query_k(3).is_empty(), "{label}: query_k(3) on empty");
    assert_eq!(empty.seen(), 0, "{label}: empty stream seen()");

    // -- f0 agreement over the full stream -----------------------------
    let mut full = make();
    let stats = full.process_batch(stream);
    assert_eq!(
        stats.total(),
        stream.len() as u64,
        "{label}: batch stats must cover the stream"
    );
    assert_eq!(full.seen(), stream.len() as u64, "{label}: seen()");
    let f0 = full.f0_estimate();
    assert!(
        (f0 - truth).abs() <= tol * truth,
        "{label}: f0 {f0} vs truth {truth} beyond {tol}"
    );
    assert!(full.words() > 0, "{label}: words() must meter something");
    assert!(full.query_k(0).is_empty(), "{label}: query_k(0) non-empty");
    let rec = full.query_record().expect("non-empty stream");
    assert!(rec.count >= 1, "{label}: record count");
    let picks = full.query_k(3);
    assert_eq!(picks.len(), 3, "{label}: query_k(3) length");

    // -- merge order-insensitivity via the associated Summary ----------
    // Split the stream across three "shards" round-robin, summarize, and
    // merge in two different orders.
    let mut shards: Vec<S> = (0..3).map(|_| make()).collect();
    for (i, item) in stream.iter().enumerate() {
        shards[i % 3].process(item);
    }
    let [a, b, c]: [S::Summary; 3] = shards
        .into_iter()
        .map(|s| s.into_summary())
        .collect::<Vec<_>>()
        .try_into()
        .map_err(|_| "three shards")
        .unwrap();
    let (a2, b2, c2) = (a.clone(), b.clone(), c.clone());
    let forward = a
        .merge(b.merge(c).expect("same cfg"))
        .expect("same cfg");
    let backward = c2
        .merge(a2)
        .expect("same cfg")
        .merge(b2)
        .expect("same cfg");
    assert_eq!(
        forward.f0_estimate(),
        backward.f0_estimate(),
        "{label}: merge must be order-insensitive"
    );
    // The generous thresholds here mean no subsampling anywhere, so the
    // sharded merge agrees with the unsharded run exactly.
    assert_eq!(
        forward.f0_estimate(),
        f0,
        "{label}: 3-way merged f0 vs unsharded"
    );
    let merged = forward;
    assert!(
        merged.query_record(1).is_some(),
        "{label}: merged summary must answer queries"
    );
    assert!(
        merged.query_k(0, 1).is_empty(),
        "{label}: merged query_k(0)"
    );
}


fn cfg(dim: usize) -> SamplerConfig {
    // threshold kappa0 * log2(m) = 80 >> 12 groups: nothing subsamples,
    // every family counts exactly.
    SamplerConfig::builder(dim, 0.5).seed(9).expected_len(1 << 20).build().unwrap()
}

#[test]
fn robust_l0_sampler_conforms() {
    let stream = euclidean_stream(4, 1);
    check_family(
        "RobustL0Sampler",
        || RobustL0Sampler::try_new(cfg(4)).unwrap(),
        &stream,
        N_GROUPS as f64,
        0.0,
    );
}

#[test]
fn sliding_window_sampler_conforms() {
    let stream = euclidean_stream(4, 2);
    check_family(
        "SlidingWindowSampler",
        || SlidingWindowSampler::try_new(cfg(4), Window::Sequence(1 << 20)).unwrap(),
        &stream,
        N_GROUPS as f64,
        0.0,
    );
}

#[test]
fn fixed_rate_window_sampler_conforms() {
    let stream = euclidean_stream(4, 3);
    check_family(
        "FixedRateWindowSampler",
        || FixedRateWindowSampler::new(cfg(4), Window::Sequence(1 << 20), 0),
        &stream,
        N_GROUPS as f64,
        0.0,
    );
}

#[test]
fn k_distinct_sampler_conforms() {
    let stream = euclidean_stream(4, 4);
    check_family(
        "KDistinctSampler",
        || KDistinctSampler::try_new(cfg(4), 3).unwrap(),
        &stream,
        N_GROUPS as f64,
        0.0,
    );
}

#[test]
fn jl_robust_sampler_conforms() {
    let dim = 64;
    let stream = euclidean_stream(dim, 5);
    check_family(
        "JlRobustSampler",
        || JlRobustSampler::try_new(dim, 0.5, 0.5, cfg(dim)).unwrap(),
        &stream,
        N_GROUPS as f64,
        0.0,
    );
}

#[test]
fn metric_robust_sampler_conforms() {
    let dim = 24;
    let stream = angular_stream(dim, 6);
    check_family(
        "MetricRobustSampler",
        || {
            MetricRobustSampler::try_new(
                SimHashPartitioner::try_new(dim, 12, 0.05, 7).unwrap(),
                64, // threshold >> 12 groups: exact counting
                9,
            ).unwrap()
        },
        &stream,
        N_GROUPS as f64,
        0.0,
    );
}

#[test]
fn jl_queries_return_ambient_space_points() {
    // The JL family's extra contract: trait queries come back in the
    // original high-dimensional space even after a summary merge.
    let dim = 64;
    let stream = euclidean_stream(dim, 7);
    let mut s = JlRobustSampler::try_new(dim, 0.5, 0.5, cfg(dim)).unwrap();
    s.process_batch(&stream);
    let rec = DistinctSampler::query_record(&mut s).expect("non-empty");
    assert_eq!(rec.rep.dim(), dim, "trait query must be ambient-space");
    assert!(stream.iter().any(|it| it.point == rec.rep));
    let summary = s.into_summary();
    let merged_rec = summary.query_record(1).expect("non-empty");
    assert_eq!(merged_rec.rep.dim(), dim, "summary query must be ambient-space");
}

#[test]
fn window_families_agree_with_infinite_on_covering_windows() {
    // With a window wider than the stream, the sliding families see the
    // same groups as the infinite-window sampler.
    let stream = euclidean_stream(4, 8);
    let mut inf = RobustL0Sampler::try_new(cfg(4)).unwrap();
    let mut win = SlidingWindowSampler::try_new(cfg(4), Window::Sequence(1 << 20)).unwrap();
    let mut fixed = FixedRateWindowSampler::new(cfg(4), Window::Sequence(1 << 20), 0);
    for it in &stream {
        DistinctSampler::process(&mut inf, it);
        DistinctSampler::process(&mut win, it);
        DistinctSampler::process(&mut fixed, it);
    }
    assert_eq!(
        DistinctSampler::f0_estimate(&inf),
        DistinctSampler::f0_estimate(&win)
    );
    assert_eq!(
        DistinctSampler::f0_estimate(&inf),
        DistinctSampler::f0_estimate(&fixed)
    );
}
