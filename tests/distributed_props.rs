//! Property-based tests (proptest) of the distributed merge: the
//! coordinator's [`merge_summaries`] must be order-insensitive, and the
//! merged estimate must agree with a single sampler that saw the
//! concatenation of every site stream.

use proptest::prelude::*;
use rds_core::{DistributedSampling, RobustL0Sampler, SamplerConfig, SiteSummary};
use rds_geometry::Point;

/// A stream of `n` points over `n_entities` well-separated entities
/// (spacing `10`, within-entity jitter `< alpha/2 = 0.25`).
fn entity_stream(n: u64, n_entities: u64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let e = i % n_entities;
            Point::new(vec![e as f64 * 10.0 + 0.01 * ((i / n_entities) % 5) as f64])
        })
        .collect()
}

/// Splits `points` across `n_sites` site streams by a deterministic
/// pseudo-random assignment, preserving relative order within each site.
fn split_across_sites(points: &[Point], n_sites: usize, salt: u64) -> Vec<Vec<Point>> {
    let mut sites = vec![Vec::new(); n_sites];
    for (i, p) in points.iter().enumerate() {
        let h = rds_hashing::splitmix64(i as u64 ^ salt);
        sites[(h % n_sites as u64) as usize].push(p.clone());
    }
    sites
}

fn site_summaries(cfg: &SamplerConfig, sites: &[Vec<Point>]) -> Vec<SiteSummary> {
    sites
        .iter()
        .map(|stream| {
            let mut s = RobustL0Sampler::try_new(cfg.clone()).unwrap();
            s.process_batch(stream);
            s.into_site_summary()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merging the same summaries in any order yields the same merged
    /// level and F0 estimate.
    #[test]
    fn merge_is_order_insensitive(
        seed in 0u64..500,
        n_entities in 4u64..40,
        n_sites in 2usize..6,
        rotation in 0usize..6,
        salt in 0u64..1000,
    ) {
        let cfg = SamplerConfig::builder(1, 0.5)
            .seed(seed)
            .expected_len(512)
            .kappa0(1.0).build().unwrap(); // small threshold: merges see real subsampling
        let dist = DistributedSampling::new(cfg.clone());
        let points = entity_stream(8 * n_entities, n_entities);
        let mut summaries = site_summaries(&cfg, &split_across_sites(&points, n_sites, salt));

        let forward = dist.merge_summaries(&summaries).expect("same cfg");
        let rot = rotation % summaries.len();
        summaries.rotate_left(rot);
        summaries.reverse();
        let shuffled = dist.merge_summaries(&summaries).expect("same cfg");

        prop_assert_eq!(forward.level(), shuffled.level());
        prop_assert_eq!(forward.f0_estimate(), shuffled.f0_estimate());
        prop_assert_eq!(forward.accept_set().len(), shuffled.accept_set().len());
    }

    /// With generous thresholds (no subsampling anywhere) the merged
    /// estimate equals the single-site estimate over the concatenated
    /// stream exactly, and both count the entities.
    #[test]
    fn merge_agrees_with_concatenated_run_exactly_when_unsubsampled(
        seed in 0u64..500,
        n_entities in 2u64..24,
        n_sites in 1usize..5,
        salt in 0u64..1000,
    ) {
        let cfg = SamplerConfig::builder(1, 0.5)
            .seed(seed)
            .expected_len(256)
            .kappa0(4.0).build().unwrap(); // threshold 32 > 24 entities: nothing subsamples
        let dist = DistributedSampling::new(cfg.clone());
        let points = entity_stream(6 * n_entities, n_entities);

        let mut single = RobustL0Sampler::try_new(cfg.clone()).unwrap();
        single.process_batch(&points);
        prop_assert_eq!(single.level(), 0, "threshold covers every entity");

        let summaries = site_summaries(&cfg, &split_across_sites(&points, n_sites, salt));
        let merged = dist.merge_summaries(&summaries).expect("same cfg");
        prop_assert_eq!(merged.f0_estimate(), single.f0_estimate());
        prop_assert_eq!(merged.f0_estimate(), n_entities as f64);
    }

    /// Same seed, same concatenated stream: even when the sites subsample,
    /// the merged estimate stays within a constant factor of the
    /// single-stream estimate (both are (1±eps)-accurate whp, so they can
    /// only drift apart by the product of their error bars).
    #[test]
    fn merge_tracks_concatenated_run_under_subsampling(
        seed in 0u64..300,
        n_sites in 2usize..5,
        salt in 0u64..1000,
    ) {
        let n_entities = 160u64;
        let cfg = SamplerConfig::builder(1, 0.5)
            .seed(seed)
            .expected_len(1280)
            .kappa0(2.0).build().unwrap(); // threshold ~21 << 160: several doublings
        let dist = DistributedSampling::new(cfg.clone());
        let points = entity_stream(8 * n_entities, n_entities);

        let mut single = RobustL0Sampler::try_new(cfg.clone()).unwrap();
        single.process_batch(&points);
        let summaries = site_summaries(&cfg, &split_across_sites(&points, n_sites, salt));
        let merged = dist.merge_summaries(&summaries).expect("same cfg");

        let (s, m) = (single.f0_estimate(), merged.f0_estimate());
        prop_assert!(s > 0.0 && m > 0.0);
        prop_assert!(
            m / s <= 4.0 && s / m <= 4.0,
            "merged {} vs single {} drifted beyond 4x", m, s
        );
    }
}
