//! End-to-end integration tests over the paper's evaluation datasets:
//! generation → streaming → sampling → accuracy metrics, spanning all
//! workspace crates.

use rds_core::{DistinctSampler, RobustL0Sampler, SamplerConfig};
use rds_datasets::{partition, PaperDataset};
use rds_hashing::point_identity;
use rds_metrics::SampleHistogram;
use std::collections::HashMap;

/// Builds an identity → group lookup for a dataset.
fn lookup(ds: &rds_datasets::Dataset) -> HashMap<u64, usize> {
    ds.points
        .iter()
        .map(|lp| (point_identity(lp.point.coords(), 0), lp.group))
        .collect()
}

#[test]
fn seeds_dataset_full_pipeline_is_uniformish() {
    // the smallest paper dataset end to end, with a few hundred runs
    let ds = PaperDataset::Seeds.generate(7);
    let map = lookup(&ds);
    let runs = 400u64;
    let mut hist = SampleHistogram::new(ds.n_groups);
    for run in 0..runs {
        let cfg = SamplerConfig::builder(ds.dim, ds.alpha)
            .seed(run * 77 + 5)
            .expected_len(ds.len() as u64).build().unwrap();
        let mut s = RobustL0Sampler::try_new(cfg).unwrap();
        for lp in &ds.points {
            s.process(&lp.point);
        }
        let q = s.query().expect("non-empty").clone();
        hist.record(map[&point_identity(q.coords(), 0)]);
    }
    // pure sampling noise at this scale is stdDevNm ~ sqrt(210/400) ~ 0.72;
    // a biased sampler (e.g. point-uniform) would be several times that.
    assert!(
        hist.std_dev_nm() < 1.1,
        "stdDevNm {} indicates bias",
        hist.std_dev_nm()
    );
    // every sampled point must be a real stream point
    assert_eq!(hist.runs(), runs);
}

#[test]
fn every_paper_dataset_streams_through_the_sampler() {
    for which in PaperDataset::ALL {
        let ds = which.generate(3);
        let cfg = SamplerConfig::builder(ds.dim, ds.alpha)
            .seed(11)
            .expected_len(ds.len() as u64).build().unwrap();
        let mut s = RobustL0Sampler::try_new(cfg).unwrap();
        for lp in &ds.points {
            s.process(&lp.point);
        }
        let q = s.query().unwrap_or_else(|| panic!("{}: empty sample", ds.name));
        assert_eq!(q.dim(), ds.dim, "{}", ds.name);
        // space must stay far below the stream length (O(log m) words vs
        // m * d words for storing the stream); the small power-law
        // datasets only beat the stream by a small factor because the
        // kappa_0 log m constant dominates at m ~ 4000
        let stream_words = ds.len() * ds.dim;
        let factor = if ds.len() > 10_000 { 10 } else { 2 };
        assert!(
            s.peak_words() < stream_words / factor,
            "{}: peak {} words vs stream {}",
            ds.name,
            s.peak_words(),
            stream_words
        );
    }
}

#[test]
fn datasets_are_well_separated_under_their_alpha() {
    // spot-check the generation invariant on the two smallest datasets
    for which in [PaperDataset::Seeds, PaperDataset::Yacht] {
        let ds = which.generate(5);
        // subsample points for the O(n^2) check
        let pts: Vec<_> = ds
            .points
            .iter()
            .step_by(7)
            .map(|lp| lp.point.clone())
            .collect();
        assert!(
            partition::is_well_separated(&pts, ds.alpha),
            "{} violates well-separation",
            ds.name
        );
    }
}

#[test]
fn connected_partition_recovers_ground_truth_groups() {
    let ds = PaperDataset::Seeds.generate(9);
    let pts: Vec<_> = ds.points.iter().map(|lp| lp.point.clone()).collect();
    // on a prefix (the full O(n^2) pass is slow in debug builds)
    let n = 2000.min(pts.len());
    let labels = partition::connected_partition(&pts[..n], ds.alpha);
    // two points get the same label iff they share a ground-truth group
    for i in (0..n).step_by(97) {
        for j in (0..n).step_by(89) {
            let same_truth = ds.points[i].group == ds.points[j].group;
            let same_found = labels[i] == labels[j];
            assert_eq!(same_truth, same_found, "pair ({i},{j})");
        }
    }
}

#[test]
fn reservoir_representative_matches_group_of_first_point() {
    let ds = PaperDataset::Yacht.generate(13);
    let cfg = SamplerConfig::builder(ds.dim, ds.alpha)
        .seed(21)
        .expected_len(ds.len() as u64).build().unwrap();
    let mut s = RobustL0Sampler::try_new(cfg).unwrap();
    for lp in &ds.points {
        s.process(&lp.point);
    }
    let rec = s.query_record().expect("non-empty");
    assert!(rec.rep.within(&rec.reservoir, ds.alpha));
    assert!(rec.count >= 1);
}
