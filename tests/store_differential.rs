//! Differential suite pinning the cell-indexed `CandidateStore` arrival
//! path against a literal re-implementation of the pre-store linear-scan
//! sampler (same seeds ⇒ identical outcomes, candidate sets, reservoirs,
//! f0, level, and PRNG positions), plus per-point vs batched equality
//! across the sampler families and adversarial rate-doubling schedules.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rds_core::{
    Checkpointable, DistinctSampler, KDistinctSampler, ProcessOutcome, RobustF0Estimator,
    RobustL0Sampler, SamplerConfig, SamplerContext, SlidingWindowSampler, MAX_LEVEL,
};
use rds_geometry::Point;
use rds_stream::{Stamp, StreamItem, Window};

/// One candidate record of the reference model.
struct RefRecord {
    rep: Point,
    cell_hash: u64,
    count: u64,
    reservoir: Point,
}

/// The pre-store reference model: Algorithm 1 with linear-scan candidate
/// sets, transcribed from the original sampler. Built from the same
/// public context/PRNG pieces, so every decision and every PRNG draw
/// must match the production sampler bit for bit.
struct RefSampler {
    ctx: SamplerContext,
    level: u32,
    acc: Vec<RefRecord>,
    rej: Vec<RefRecord>,
    threshold: usize,
    seen: u64,
    scratch: Vec<i64>,
    rng: StdRng,
}

impl RefSampler {
    fn with_threshold(cfg: SamplerConfig, threshold: usize) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_CAFE);
        Self {
            ctx: SamplerContext::new(cfg),
            level: 0,
            acc: Vec::new(),
            rej: Vec::new(),
            threshold,
            seen: 0,
            scratch: Vec::new(),
            rng,
        }
    }

    fn new(cfg: SamplerConfig) -> Self {
        let threshold = cfg.threshold();
        Self::with_threshold(cfg, threshold)
    }

    fn process(&mut self, p: &Point) -> ProcessOutcome {
        self.seen += 1;
        let alpha = self.ctx.alpha();
        if let Some(rec) = self
            .acc
            .iter_mut()
            .chain(self.rej.iter_mut())
            .find(|r| r.rep.within(p, alpha))
        {
            rec.count += 1;
            if self.rng.random_range(0..rec.count) == 0 {
                rec.reservoir = p.clone();
            }
            return ProcessOutcome::Duplicate;
        }
        let h = self.ctx.cell_hash(p, &mut self.scratch);
        let outcome = if self.ctx.hash_sampled(h, self.level) {
            self.acc.push(RefRecord {
                rep: p.clone(),
                cell_hash: h,
                count: 1,
                reservoir: p.clone(),
            });
            ProcessOutcome::Accepted
        } else if self.ctx.any_adjacent_sampled(p, self.level) {
            self.rej.push(RefRecord {
                rep: p.clone(),
                cell_hash: h,
                count: 1,
                reservoir: p.clone(),
            });
            ProcessOutcome::Rejected
        } else {
            ProcessOutcome::Ignored
        };
        while self.acc.len() > self.threshold && self.level < MAX_LEVEL {
            self.double_rate();
        }
        outcome
    }

    fn double_rate(&mut self) {
        self.level += 1;
        let level = self.level;
        let mut kept = Vec::new();
        let mut demoted = Vec::new();
        for rec in self.acc.drain(..) {
            if rds_hashing::level_sampled(rec.cell_hash, level) {
                kept.push(rec);
            } else {
                demoted.push(rec);
            }
        }
        self.acc = kept;
        for rec in demoted {
            if self.ctx.any_adjacent_sampled(&rec.rep, level) {
                self.rej.push(rec);
            }
        }
        let ctx = &self.ctx;
        self.rej
            .retain(|rec| ctx.any_adjacent_sampled(&rec.rep, level));
    }

    /// The original query path: a uniform index draw over `Sacc`
    /// (`choose` = one `uniform_below(len)` word), nothing on empty.
    fn query(&mut self) -> Option<Point> {
        if self.acc.is_empty() {
            return None;
        }
        let i = self.rng.random_range(0..self.acc.len() as u64) as usize;
        Some(self.acc[i].rep.clone())
    }

    fn f0_estimate(&self) -> f64 {
        self.acc.len() as f64 * (1u64 << self.level) as f64
    }
}

/// A clustered stream: `n_entities` well-separated centers, points cycle
/// through the entities with per-point jitter below `alpha / 2`, so
/// near-duplicate structure is dense and deterministic in the seed.
fn entity_stream(seed: u64, n_points: usize, n_entities: usize, dim: usize) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(n_points);
    for i in 0..n_points {
        let e = (i * 7 + 3) % n_entities.max(1);
        let coords = (0..dim)
            .map(|d| {
                let center = ((e * (d + 2) + e) % (10 * n_entities.max(1))) as f64 * 10.0;
                center + rng.random_range(0.0..0.4)
            })
            .collect();
        pts.push(Point::new(coords));
    }
    pts
}

/// Asserts the production sampler and the reference model agree on
/// everything observable after the same stream: per-point outcomes were
/// already compared by the caller; this checks the terminal state.
fn assert_states_agree(s: &RobustL0Sampler, r: &RefSampler) {
    assert_eq!(s.seen(), r.seen, "seen");
    assert_eq!(s.level(), r.level, "level");
    assert_eq!(s.f0_estimate(), r.f0_estimate(), "f0");
    let acc = s.accept_set();
    let rej = s.reject_set();
    assert_eq!(acc.len(), r.acc.len(), "|Sacc|");
    assert_eq!(rej.len(), r.rej.len(), "|Srej|");
    for (a, b) in acc.iter().zip(r.acc.iter()) {
        assert_eq!(a.rep, b.rep, "acc rep");
        assert_eq!(a.cell_hash, b.cell_hash, "acc cell_hash");
        assert_eq!(a.count, b.count, "acc count");
        assert_eq!(a.reservoir, b.reservoir, "acc reservoir");
    }
    for (a, b) in rej.iter().zip(r.rej.iter()) {
        assert_eq!(a.rep, b.rep, "rej rep");
        assert_eq!(a.cell_hash, b.cell_hash, "rej cell_hash");
        assert_eq!(a.count, b.count, "rej count");
        assert_eq!(a.reservoir, b.reservoir, "rej reservoir");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seeds ⇒ the cell-indexed store and the linear-scan reference
    /// take identical decisions on every arrival and hold identical
    /// candidate state afterwards, across dimensions, thresholds, and
    /// duplicate densities.
    #[test]
    fn store_matches_linear_reference(
        seed in 0u64..500,
        dim in 1usize..4,
        n_entities in 1usize..40,
        n_points in 1usize..300,
        kappa0_idx in 0usize..3,
    ) {
        let kappa0 = [0.5, 1.0, 4.0][kappa0_idx];
        let pts = entity_stream(seed, n_points, n_entities, dim);
        let cfg = SamplerConfig::builder(dim, 1.0)
            .seed(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1))
            .expected_len(pts.len() as u64)
            .kappa0(kappa0)
            .build().unwrap();
        let mut prod = RobustL0Sampler::try_new(cfg.clone()).unwrap();
        let mut reference = RefSampler::new(cfg);
        for p in &pts {
            prop_assert_eq!(prod.process(p), reference.process(p));
        }
        assert_states_agree(&prod, &reference);
        // Query draws consume the same PRNG words in the same order.
        for _ in 0..5 {
            prop_assert_eq!(prod.query().cloned(), reference.query());
        }
    }

    /// The batched arrival path leaves the sampler in exactly the state
    /// per-point feeding produces — including the reference model's.
    #[test]
    fn batched_ingestion_matches_reference(
        seed in 0u64..300,
        n_entities in 1usize..25,
        chunk in 1usize..40,
    ) {
        let pts = entity_stream(seed, 200, n_entities, 2);
        let cfg = SamplerConfig::builder(2, 1.0)
            .seed(seed ^ 0xABCD)
            .expected_len(pts.len() as u64)
            .kappa0(1.0)
            .build().unwrap();
        let mut batched = RobustL0Sampler::try_new(cfg.clone()).unwrap();
        for c in pts.chunks(chunk) {
            batched.process_batch(c);
        }
        let mut reference = RefSampler::new(cfg);
        for p in &pts {
            reference.process(p);
        }
        assert_states_agree(&batched, &reference);
    }

    /// Checkpoint / restore in the middle of the stream rebuilds the cell
    /// index exactly: the restored sampler finishes the stream in
    /// lockstep with the reference.
    #[test]
    fn restored_store_matches_reference(
        seed in 0u64..200,
        n_entities in 1usize..20,
        cut in 1usize..150,
    ) {
        let pts = entity_stream(seed, 160, n_entities, 2);
        let cut = cut.min(pts.len());
        let cfg = SamplerConfig::builder(2, 1.0)
            .seed(seed ^ 0x51AB)
            .expected_len(pts.len() as u64)
            .kappa0(0.5)
            .build().unwrap();
        let mut prod = RobustL0Sampler::try_new(cfg.clone()).unwrap();
        let mut reference = RefSampler::new(cfg);
        for p in &pts[..cut] {
            prod.process(p);
            reference.process(p);
        }
        let wire = serde_json::to_string(&prod.checkpoint_state()).unwrap();
        let mut restored = RobustL0Sampler::try_from_state(
            serde_json::from_str(&wire).unwrap(),
        ).unwrap();
        for p in &pts[cut..] {
            prop_assert_eq!(restored.process(p), reference.process(p));
        }
        assert_states_agree(&restored, &reference);
        for _ in 0..3 {
            prop_assert_eq!(restored.query().cloned(), reference.query());
        }
    }
}

/// An adversarial doubling schedule: threshold 1 with many distinct
/// entities forces a rate doubling almost every arrival, exercising the
/// store's demote-compact-rebuild path far beyond organic streams.
#[test]
fn adversarial_doubling_schedule_matches_reference() {
    for seed in 0..8u64 {
        let pts = entity_stream(seed, 400, 120, 2);
        let cfg = SamplerConfig::builder(2, 1.0)
            .seed(seed.wrapping_mul(7919) ^ 0xD0B1)
            .expected_len(pts.len() as u64)
            .build()
            .unwrap();
        let mut prod = RobustL0Sampler::try_with_threshold(cfg.clone(), 1).unwrap();
        let mut reference = RefSampler::with_threshold(cfg, 1);
        for p in &pts {
            assert_eq!(prod.process(p), reference.process(p), "seed {seed}");
        }
        assert_states_agree(&prod, &reference);
        assert!(
            prod.rate_doublings() > 0,
            "schedule failed to force any doubling (seed {seed})"
        );
    }
}

/// Per-point vs batched processing through the `DistinctSampler` trait,
/// for every family that wraps the infinite-window sampler plus the
/// window families (whose batch path is the amortized default).
#[test]
fn all_families_batch_equals_per_point() {
    let pts = entity_stream(99, 300, 30, 3);
    let items: Vec<StreamItem> = pts
        .iter()
        .enumerate()
        .map(|(i, p)| StreamItem::new(p.clone(), Stamp::at(i as u64)))
        .collect();
    let cfg = SamplerConfig::builder(3, 1.0)
        .seed(0xFACE)
        .expected_len(pts.len() as u64)
        .kappa0(1.0)
        .build()
        .unwrap();
    let window = Window::Sequence(128);

    fn check<S: DistinctSampler>(mut a: S, mut b: S, items: &[StreamItem], what: &str) {
        for item in items {
            a.process(item);
        }
        for chunk in items.chunks(23) {
            b.process_batch(chunk);
        }
        assert_eq!(a.seen(), b.seen(), "{what}: seen");
        assert_eq!(a.f0_estimate(), b.f0_estimate(), "{what}: f0");
        assert_eq!(a.words(), b.words(), "{what}: words");
        assert_eq!(
            a.query_record().map(|r| r.rep),
            b.query_record().map(|r| r.rep),
            "{what}: query"
        );
    }

    check(
        RobustL0Sampler::try_new(cfg.clone()).unwrap(),
        RobustL0Sampler::try_new(cfg.clone()).unwrap(),
        &items,
        "RobustL0Sampler",
    );
    check(
        KDistinctSampler::try_new(cfg.clone(), 3).unwrap(),
        KDistinctSampler::try_new(cfg.clone(), 3).unwrap(),
        &items,
        "KDistinctSampler",
    );
    // RobustF0Estimator is not a DistinctSampler; its inherent batch API
    // runs over bare points. (KWithReplacementSampler has no batch path
    // at all — its copies are fed one point at a time.)
    {
        let mut a = RobustF0Estimator::try_new(cfg.clone(), 0.5, 3).unwrap();
        let mut b = RobustF0Estimator::try_new(cfg.clone(), 0.5, 3).unwrap();
        for p in &pts {
            a.process(p);
        }
        for chunk in pts.chunks(23) {
            b.process_batch(chunk);
        }
        assert_eq!(a.estimate(), b.estimate(), "RobustF0Estimator: estimate");
        assert_eq!(a.words(), b.words(), "RobustF0Estimator: words");
    }
    check(
        SlidingWindowSampler::try_new(cfg.clone(), window).unwrap(),
        SlidingWindowSampler::try_new(cfg.clone(), window).unwrap(),
        &items,
        "SlidingWindowSampler",
    );
}
