//! Integration tests of the Section 5 F0 estimators against ground truth
//! and against the noiseless baselines' failure mode.

use rds_baselines::{HyperLogLog, KmvDistinctEstimator};
use rds_core::{RobustF0Estimator, SamplerConfig, SlidingWindowF0};
use rds_datasets::PaperDataset;
use rds_hashing::point_identity;
use rds_stream::{Stamp, StreamItem, Window};

#[test]
fn robust_f0_close_to_truth_on_paper_dataset() {
    let ds = PaperDataset::Seeds.generate(2);
    let cfg = SamplerConfig::builder(ds.dim, ds.alpha)
        .seed(3)
        .expected_len(ds.len() as u64).build().unwrap();
    let mut est = RobustF0Estimator::try_new(cfg, 0.3, 7).unwrap();
    for lp in &ds.points {
        est.process(&lp.point);
    }
    let f0 = est.estimate();
    let truth = ds.n_groups as f64;
    assert!(
        (f0 - truth).abs() / truth < 0.5,
        "estimate {f0} vs truth {truth}"
    );
}

#[test]
fn noiseless_sketches_overcount_near_duplicates() {
    let ds = PaperDataset::Seeds.generate(4);
    let mut hll = HyperLogLog::new(12, 7);
    let mut kmv = KmvDistinctEstimator::new(256, 7);
    for lp in &ds.points {
        let id = point_identity(lp.point.coords(), 5);
        hll.process(id);
        kmv.process(id);
    }
    let truth = ds.n_groups as f64;
    // both count points, not groups: overcounting by the mean group size
    assert!(
        hll.estimate() > 5.0 * truth,
        "HLL {} vs groups {truth}",
        hll.estimate()
    );
    assert!(
        kmv.estimate() > 5.0 * truth,
        "KMV {} vs groups {truth}",
        kmv.estimate()
    );
}

#[test]
fn robust_f0_is_monotone_in_group_count() {
    // estimates must grow with the number of groups
    let mut estimates = Vec::new();
    for &n_groups in &[20u64, 80, 320] {
        let cfg = SamplerConfig::builder(1, 0.5)
            .seed(9)
            .expected_len(3200).build().unwrap();
        let mut est = RobustF0Estimator::try_new(cfg, 0.5, 5).unwrap();
        for i in 0..3200u64 {
            est.process(&rds_geometry::Point::new(vec![
                (i % n_groups) as f64 * 10.0,
            ]));
        }
        estimates.push(est.estimate());
    }
    assert!(estimates[0] < estimates[1] && estimates[1] < estimates[2]);
}

#[test]
fn sliding_window_f0_follows_the_window() {
    let cfg = SamplerConfig::builder(1, 0.5)
        .seed(11)
        .expected_len(4096)
        .kappa0(1.0).build().unwrap();
    let mut est = SlidingWindowF0::try_new(cfg, Window::Sequence(256), 1.0).unwrap();
    // phase 1: 100 groups
    for i in 0..1024u64 {
        est.process(&StreamItem::new(
            rds_geometry::Point::new(vec![(i % 100) as f64 * 10.0]),
            Stamp::at(i),
        ));
    }
    let phase1 = est.estimate();
    assert!(
        phase1 > 40.0 && phase1 < 250.0,
        "phase1 estimate {phase1} vs truth 100"
    );
    // phase 2: 10 groups (after a full window)
    for i in 1024..2048u64 {
        est.process(&StreamItem::new(
            rds_geometry::Point::new(vec![(i % 10) as f64 * 10.0]),
            Stamp::at(i),
        ));
    }
    let phase2 = est.estimate();
    assert!(
        phase2 < phase1 / 2.0,
        "estimate failed to follow: {phase1} -> {phase2}"
    );
}

#[test]
fn fm_estimate_reports_sane_scale() {
    let cfg = SamplerConfig::builder(1, 0.5)
        .seed(13)
        .expected_len(2048)
        .kappa0(1.0).build().unwrap();
    let mut est = SlidingWindowF0::try_new(cfg, Window::Sequence(512), 1.0).unwrap();
    for i in 0..2048u64 {
        est.process(&StreamItem::new(
            rds_geometry::Point::new(vec![(i % 128) as f64 * 10.0]),
            Stamp::at(i),
        ));
    }
    let fm = est.fm_estimate();
    // order-of-magnitude check only (the paper's own estimator sketch)
    assert!(fm > 8.0 && fm < 2048.0, "fm estimate {fm}");
}
