//! The concurrency contract of the writer/reader split (ISSUE 4
//! acceptance): a writer ingesting at full speed while cloned readers
//! query in a loop, with
//!
//! * **no lost updates** — every published snapshot covers the exact
//!   prefix the writer had processed (`f0 == min(seen, entities)` under
//!   exact-counting thresholds, and the final snapshot covers the whole
//!   stream);
//! * **monotone epochs** — no reader ever observes the epoch move
//!   backwards;
//! * **equivalence** — `publish(); reader.query_k(k)` returns exactly
//!   what an equivalent single-threaded [`Rds`] returns (proptest over
//!   seeds, stream lengths, entity counts and shard counts).

use proptest::prelude::*;
use robust_distinct_sampling::geometry::Point;
use robust_distinct_sampling::stream::Window;
use robust_distinct_sampling::{PublishCadence, Rds, Snapshot};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Well-separated entities (spacing 10, jitter < alpha/2 = 0.25) so
/// exact-counting configurations count them exactly.
fn entity_point(i: u64, n_entities: u64) -> Point {
    Point::new(vec![
        (i % n_entities) as f64 * 10.0 + 0.01 * ((i / n_entities) % 5) as f64,
    ])
}

#[test]
fn writer_ingests_while_four_readers_query() {
    const N: u64 = 40_000;
    const ENTITIES: u64 = 100;
    const READERS: usize = 4;
    // count_accuracy(0.3) -> threshold ceil(16/0.09) = 178 > 100 entities:
    // nothing subsamples, so every snapshot's estimate is *exact* and any
    // deviation is a lost or phantom update.
    let (mut writer, reader) = Rds::builder()
        .dim(1)
        .alpha(0.5)
        .seed(11)
        .expected_len(N)
        .count_accuracy(0.3)
        .shards(4)
        .publish_every(512)
        .build_split()
        .expect("valid");

    let done = AtomicBool::new(false);
    let total_queries = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let reader = reader.clone();
            let done = &done;
            let total_queries = &total_queries;
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut draws = 0u64;
                let mut queries = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = reader.snapshot();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epoch moved backwards: {} after {last_epoch}",
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    // Exact counting: the snapshot must cover precisely
                    // the prefix it claims — nothing lost, nothing
                    // invented.
                    let expected = snap.seen().min(ENTITIES) as f64;
                    assert_eq!(
                        snap.f0_estimate(),
                        expected,
                        "snapshot at seen {} (epoch {}) has a wrong count",
                        snap.seen(),
                        snap.epoch()
                    );
                    if snap.seen() > 0 {
                        draws += 1;
                        let q = snap.query_at(draws).expect("non-empty snapshot");
                        let entity = (q.rep.get(0) / 10.0).round();
                        assert!(
                            (0.0..ENTITIES as f64).contains(&entity),
                            "sample {q:?} is not an ingested entity"
                        );
                    }
                    queries += 1;
                }
                total_queries.fetch_add(queries, Ordering::Relaxed);
            });
        }
        // The writer ingests the whole stream while the readers hammer
        // the snapshot slot from other threads.
        for i in 0..N {
            writer.process(entity_point(i, ENTITIES));
        }
        writer.publish();
        done.store(true, Ordering::Relaxed);
    });

    // No lost updates end to end.
    assert_eq!(reader.seen(), N);
    assert_eq!(reader.f0_estimate(), ENTITIES as f64);
    assert!(
        total_queries.load(Ordering::Relaxed) > 0,
        "readers never got to query"
    );
}

#[test]
fn windowed_split_serves_live_estimates_concurrently() {
    const W: u64 = 256;
    let (mut writer, reader) = Rds::builder()
        .dim(1)
        .alpha(0.5)
        .seed(23)
        .expected_len(1 << 14)
        .window(Window::Sequence(W))
        .shards(3)
        .publish_every(128)
        .build_split()
        .expect("valid");

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let reader2 = reader.clone();
        let done_ref = &done;
        scope.spawn(move || {
            let mut last_epoch = 0u64;
            while !done_ref.load(Ordering::Relaxed) {
                let snap = reader2.snapshot();
                assert!(snap.epoch() >= last_epoch);
                last_epoch = snap.epoch();
                // 16 entities cycle through a window of 256: once warm,
                // every snapshot sees exactly the 16 live ones.
                if snap.seen() >= W {
                    assert_eq!(snap.f0_estimate(), 16.0, "at seen {}", snap.seen());
                }
            }
        });
        for i in 0..8192u64 {
            writer.process(entity_point(i, 16));
        }
        writer.publish();
        done.store(true, Ordering::Relaxed);
    });
    assert_eq!(reader.f0_estimate(), 16.0);
    assert_eq!(reader.seen(), 8192);
}

#[test]
fn panicking_writer_leaves_readers_a_coherent_snapshot() {
    // Regression: the snapshot slot used to be a `std::sync::RwLock`
    // with `PoisonError` recovery paths — a panicking writer poisoned
    // the lock and every reader path had to unwrap the poison. The slot
    // is now a lock-free epoch pointer with nothing to poison: a writer
    // that dies mid-stream leaves readers exactly the last *published*
    // snapshot, coherent and fully queryable, never a torn or
    // stale-epoch view.
    const N: u64 = 6_000;
    const ENTITIES: u64 = 100;
    let (mut writer, reader) = Rds::builder()
        .dim(1)
        .alpha(0.5)
        .seed(31)
        .expected_len(N)
        .count_accuracy(0.3) // exact counting: torn state is detectable
        .shards(2)
        .publish_every(256)
        .build_split()
        .expect("valid");

    // Keep the injected panic out of the test output without touching
    // anyone else's: forward everything that isn't ours.
    let original = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let ours = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected writer failure"));
        if !ours {
            original(info);
        }
    }));

    let done = AtomicBool::new(false);
    let observed = std::thread::scope(|scope| {
        let observer = {
            let reader = reader.clone();
            let done = &done;
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = reader.snapshot();
                    assert!(snap.epoch() >= last_epoch, "stale epoch served");
                    last_epoch = snap.epoch();
                    assert_eq!(
                        snap.f0_estimate(),
                        snap.seen().min(ENTITIES) as f64,
                        "torn snapshot at epoch {}",
                        snap.epoch()
                    );
                }
                last_epoch
            })
        };
        let writer_thread = scope.spawn(move || {
            for i in 0..N {
                writer.process(entity_point(i, ENTITIES));
            }
            writer.publish();
            panic!("injected writer failure");
        });
        let crashed = writer_thread.join();
        assert!(crashed.is_err(), "the writer must have panicked");
        done.store(true, Ordering::Relaxed);
        observer.join().expect("observer saw a torn or stale snapshot")
    });
    drop(std::panic::take_hook()); // restore the default hook

    // After the crash the cell still serves the final published state.
    assert!(observed >= 1, "the observer never saw a publication");
    let snap = reader.snapshot();
    assert_eq!(snap.seen(), N);
    assert_eq!(snap.f0_estimate(), ENTITIES as f64);
    assert!(snap.query_at(1).is_some(), "final snapshot is queryable");
    assert_eq!(reader.snapshot().epoch(), snap.epoch(), "epoch is stable");
}

#[test]
fn lock_free_cell_stress_is_epoch_monotone_with_no_torn_reads() {
    // Seeded repeated runs against the lock-free snapshot cell: a
    // writer publishing every 64 items races two readers that assert
    // (a) the epoch never moves backwards and (b) every snapshot is
    // internally consistent — under exact counting, `f0` must equal
    // `min(seen, entities)` in *every* observed snapshot, so any torn
    // publication (summary from one epoch, counters from another)
    // fails loudly.
    for seed in [3u64, 17, 59] {
        const N: u64 = 6_000;
        const ENTITIES: u64 = 60;
        let (mut writer, reader) = Rds::builder()
            .dim(1)
            .alpha(0.5)
            .seed(seed)
            .expected_len(N)
            .count_accuracy(0.3)
            .shards(2)
            .publish_every(64)
            .build_split()
            .expect("valid");
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let reader = reader.clone();
                let done = &done;
                scope.spawn(move || {
                    let mut last_epoch = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        let snap = reader.snapshot();
                        assert!(
                            snap.epoch() >= last_epoch,
                            "seed {seed}: epoch regressed to {}",
                            snap.epoch()
                        );
                        last_epoch = snap.epoch();
                        assert_eq!(
                            snap.f0_estimate(),
                            snap.seen().min(ENTITIES) as f64,
                            "seed {seed}: torn snapshot at epoch {}",
                            snap.epoch()
                        );
                    }
                });
            }
            for i in 0..N {
                writer.process(entity_point(i, ENTITIES));
            }
            writer.publish();
            done.store(true, Ordering::Relaxed);
        });
        assert_eq!(reader.seen(), N, "seed {seed}");
        assert_eq!(reader.f0_estimate(), ENTITIES as f64, "seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `publish(); query_k` on a reader equals `query_k` on an equivalent
    /// single-threaded `Rds` — same records, same order, same counts —
    /// and the estimates agree, across shard counts and window models.
    #[test]
    fn published_reader_matches_single_threaded_rds(
        seed in 0u64..200,
        n_entities in 2u64..40,
        n in 10u64..400,
        k in 1usize..6,
        shards in 1usize..4,
        windowed in 0u8..2,
    ) {
        let window = if windowed == 1 {
            Window::Sequence(1 << 12)
        } else {
            Window::Infinite
        };
        let builder = || Rds::builder()
            .dim(1)
            .alpha(0.5)
            .seed(seed)
            .expected_len(512)
            .window(window)
            .shards(shards)
            .publish_cadence(PublishCadence::Manual);
        let (mut writer, reader) = builder().build_split().unwrap();
        let mut rds = builder().build().unwrap();
        for i in 0..n {
            let p = entity_point(i, n_entities);
            writer.process(p.clone());
            rds.process(p);
        }
        writer.publish();
        let from_reader = reader.query_k(k);
        let from_rds = rds.query_k(k);
        prop_assert_eq!(from_reader.len(), from_rds.len());
        for (a, b) in from_reader.iter().zip(from_rds.iter()) {
            prop_assert_eq!(&a.rep, &b.rep);
            prop_assert_eq!(a.count, b.count);
        }
        prop_assert_eq!(reader.f0_estimate(), rds.f0_estimate());
        prop_assert_eq!(reader.seen(), rds.seen());
    }

    /// Copy-on-write publication is invisible to queries: snapshots in
    /// a CoW chain `Arc`-share untouched levels with the writer's live
    /// state *and with each other*, yet every retained epoch must keep
    /// answering exactly like a from-scratch deep copy taken at that
    /// epoch — even after the writer mutates far past it. The deep
    /// copies go through the wire format (which materializes every
    /// shared level into private storage), so any aliasing bug where a
    /// later mutation bleeds into an already-published level diverges.
    #[test]
    fn cow_snapshot_chain_matches_from_scratch_deep_copies(
        seed in 0u64..100,
        n_entities in 2u64..30,
        steps in 3u64..8,
        shards in 1usize..4,
        windowed in 0u8..2,
    ) {
        const STEP: u64 = 40;
        let window = if windowed == 1 {
            Window::Sequence(1 << 12)
        } else {
            Window::Infinite
        };
        let builder = || Rds::builder()
            .dim(1)
            .alpha(0.5)
            .seed(seed)
            .expected_len(512)
            .window(window)
            .shards(shards)
            .publish_cadence(PublishCadence::Manual);
        let (mut writer, reader) = builder().build_split().unwrap();

        // Build the CoW chain, deep-copying each epoch as it appears.
        let mut chain: Vec<(u64, std::sync::Arc<Snapshot>, Snapshot)> = Vec::new();
        for s in 0..steps {
            for i in s * STEP..(s + 1) * STEP {
                writer.process(entity_point(i, n_entities));
            }
            writer.publish();
            let snap = reader.snapshot();
            let deep: Snapshot =
                serde_json::from_str(&serde_json::to_string(&*snap).unwrap()).unwrap();
            chain.push(((s + 1) * STEP, snap, deep));
        }
        // Mutate well past every retained epoch: different entity
        // layout, so aliased levels would visibly change.
        for i in 0..200u64 {
            writer.process(entity_point(i * 3 + 1, n_entities * 2 + 1));
        }
        writer.publish();

        for (k, (prefix, snap, deep)) in chain.iter().enumerate() {
            // Epoch monotonicity along the chain.
            prop_assert_eq!(snap.epoch(), (k + 1) as u64);
            // Retained CoW snapshot == deep copy taken at its epoch.
            prop_assert_eq!(snap.seen(), deep.seen());
            prop_assert_eq!(snap.f0_estimate(), deep.f0_estimate());
            for draw in [1u64, 5, 11] {
                let a = snap.query_k_at(3, draw);
                let b = deep.query_k_at(3, draw);
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    prop_assert_eq!(&x.rep, &y.rep);
                    prop_assert_eq!(x.count, y.count);
                    prop_assert_eq!(x.cell_hash, y.cell_hash);
                }
            }
            // And both equal a from-scratch run over the same prefix.
            let mut rds = builder().build().unwrap();
            for i in 0..*prefix {
                rds.process(entity_point(i, n_entities));
            }
            prop_assert_eq!(snap.seen(), rds.seen());
            prop_assert_eq!(snap.f0_estimate(), rds.f0_estimate());
        }
    }
}
