//! The concurrency contract of the writer/reader split (ISSUE 4
//! acceptance): a writer ingesting at full speed while cloned readers
//! query in a loop, with
//!
//! * **no lost updates** — every published snapshot covers the exact
//!   prefix the writer had processed (`f0 == min(seen, entities)` under
//!   exact-counting thresholds, and the final snapshot covers the whole
//!   stream);
//! * **monotone epochs** — no reader ever observes the epoch move
//!   backwards;
//! * **equivalence** — `publish(); reader.query_k(k)` returns exactly
//!   what an equivalent single-threaded [`Rds`] returns (proptest over
//!   seeds, stream lengths, entity counts and shard counts).

use proptest::prelude::*;
use robust_distinct_sampling::geometry::Point;
use robust_distinct_sampling::stream::Window;
use robust_distinct_sampling::{PublishCadence, Rds};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Well-separated entities (spacing 10, jitter < alpha/2 = 0.25) so
/// exact-counting configurations count them exactly.
fn entity_point(i: u64, n_entities: u64) -> Point {
    Point::new(vec![
        (i % n_entities) as f64 * 10.0 + 0.01 * ((i / n_entities) % 5) as f64,
    ])
}

#[test]
fn writer_ingests_while_four_readers_query() {
    const N: u64 = 40_000;
    const ENTITIES: u64 = 100;
    const READERS: usize = 4;
    // count_accuracy(0.3) -> threshold ceil(16/0.09) = 178 > 100 entities:
    // nothing subsamples, so every snapshot's estimate is *exact* and any
    // deviation is a lost or phantom update.
    let (mut writer, reader) = Rds::builder()
        .dim(1)
        .alpha(0.5)
        .seed(11)
        .expected_len(N)
        .count_accuracy(0.3)
        .shards(4)
        .publish_every(512)
        .build_split()
        .expect("valid");

    let done = AtomicBool::new(false);
    let total_queries = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let reader = reader.clone();
            let done = &done;
            let total_queries = &total_queries;
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut draws = 0u64;
                let mut queries = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = reader.snapshot();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epoch moved backwards: {} after {last_epoch}",
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    // Exact counting: the snapshot must cover precisely
                    // the prefix it claims — nothing lost, nothing
                    // invented.
                    let expected = snap.seen().min(ENTITIES) as f64;
                    assert_eq!(
                        snap.f0_estimate(),
                        expected,
                        "snapshot at seen {} (epoch {}) has a wrong count",
                        snap.seen(),
                        snap.epoch()
                    );
                    if snap.seen() > 0 {
                        draws += 1;
                        let q = snap.query_at(draws).expect("non-empty snapshot");
                        let entity = (q.rep.get(0) / 10.0).round();
                        assert!(
                            (0.0..ENTITIES as f64).contains(&entity),
                            "sample {q:?} is not an ingested entity"
                        );
                    }
                    queries += 1;
                }
                total_queries.fetch_add(queries, Ordering::Relaxed);
            });
        }
        // The writer ingests the whole stream while the readers hammer
        // the snapshot slot from other threads.
        for i in 0..N {
            writer.process(entity_point(i, ENTITIES));
        }
        writer.publish();
        done.store(true, Ordering::Relaxed);
    });

    // No lost updates end to end.
    assert_eq!(reader.seen(), N);
    assert_eq!(reader.f0_estimate(), ENTITIES as f64);
    assert!(
        total_queries.load(Ordering::Relaxed) > 0,
        "readers never got to query"
    );
}

#[test]
fn windowed_split_serves_live_estimates_concurrently() {
    const W: u64 = 256;
    let (mut writer, reader) = Rds::builder()
        .dim(1)
        .alpha(0.5)
        .seed(23)
        .expected_len(1 << 14)
        .window(Window::Sequence(W))
        .shards(3)
        .publish_every(128)
        .build_split()
        .expect("valid");

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let reader2 = reader.clone();
        let done_ref = &done;
        scope.spawn(move || {
            let mut last_epoch = 0u64;
            while !done_ref.load(Ordering::Relaxed) {
                let snap = reader2.snapshot();
                assert!(snap.epoch() >= last_epoch);
                last_epoch = snap.epoch();
                // 16 entities cycle through a window of 256: once warm,
                // every snapshot sees exactly the 16 live ones.
                if snap.seen() >= W {
                    assert_eq!(snap.f0_estimate(), 16.0, "at seen {}", snap.seen());
                }
            }
        });
        for i in 0..8192u64 {
            writer.process(entity_point(i, 16));
        }
        writer.publish();
        done.store(true, Ordering::Relaxed);
    });
    assert_eq!(reader.f0_estimate(), 16.0);
    assert_eq!(reader.seen(), 8192);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `publish(); query_k` on a reader equals `query_k` on an equivalent
    /// single-threaded `Rds` — same records, same order, same counts —
    /// and the estimates agree, across shard counts and window models.
    #[test]
    fn published_reader_matches_single_threaded_rds(
        seed in 0u64..200,
        n_entities in 2u64..40,
        n in 10u64..400,
        k in 1usize..6,
        shards in 1usize..4,
        windowed in 0u8..2,
    ) {
        let window = if windowed == 1 {
            Window::Sequence(1 << 12)
        } else {
            Window::Infinite
        };
        let builder = || Rds::builder()
            .dim(1)
            .alpha(0.5)
            .seed(seed)
            .expected_len(512)
            .window(window)
            .shards(shards)
            .publish_cadence(PublishCadence::Manual);
        let (mut writer, reader) = builder().build_split().unwrap();
        let mut rds = builder().build().unwrap();
        for i in 0..n {
            let p = entity_point(i, n_entities);
            writer.process(p.clone());
            rds.process(p);
        }
        writer.publish();
        let from_reader = reader.query_k(k);
        let from_rds = rds.query_k(k);
        prop_assert_eq!(from_reader.len(), from_rds.len());
        for (a, b) in from_reader.iter().zip(from_rds.iter()) {
            prop_assert_eq!(&a.rep, &b.rep);
            prop_assert_eq!(a.count, b.count);
        }
        prop_assert_eq!(reader.f0_estimate(), rds.f0_estimate());
        prop_assert_eq!(reader.seen(), rds.seen());
    }
}
