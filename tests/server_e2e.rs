//! End-to-end suite over loopback HTTP: the served results must be
//! **bit-identical** to the in-process facade on the same seeded
//! stream, snapshots must be epoch-monotone under concurrent readers
//! during sustained ingest, and a checkpoint saved over HTTP must
//! restore into a fresh server that answers identically.

use rds_server::api_types::{F0Response, QueryResponse};
use rds_server::client::{self, Conn};
use rds_server::{bind, BackendConfig, ServerConfig};
use robust_distinct_sampling::Rds;
use rds_geometry::Point;

const DIM: usize = 2;
const ALPHA: f64 = 0.5;
const SEED: u64 = 9;
const N_POINTS: u64 = 400;
const N_ENTITIES: u64 = 25;
const PUBLISH_EVERY: u64 = 100;
const BATCH: usize = 100;

/// The shared seeded stream: entities on a lattice with jitter, the
/// same construction the engine bench uses.
fn stream() -> Vec<Vec<f64>> {
    (0..N_POINTS)
        .map(|i| {
            let e = i % N_ENTITIES;
            let jitter = 0.01 * ((i / N_ENTITIES) % 5) as f64;
            vec![(e % 8) as f64 * 10.0 + jitter, (e / 8) as f64 * 10.0]
        })
        .collect()
}

fn backend() -> BackendConfig {
    let mut b = BackendConfig::new(DIM, ALPHA);
    b.seed = SEED;
    b.expected_len = N_POINTS;
    b.publish_every = Some(PUBLISH_EVERY);
    b
}

fn start(backend: BackendConfig) -> rds_server::ServerHandle {
    let mut cfg = ServerConfig::new(backend);
    cfg.threads = 4;
    bind(cfg).expect("bind server")
}

fn ingest_batch(conn: &mut Conn, batch: &[Vec<f64>]) {
    let rows: Vec<String> = batch
        .iter()
        .map(|p| format!("[{}]", p.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",")))
        .collect();
    let body = format!("{{\"points\": [{}]}}", rows.join(","));
    let (status, resp) = conn.request("POST", "/ingest", Some(&body)).expect("ingest");
    assert_eq!(status, 200, "{resp}");
}

fn ingest_all(conn: &mut Conn) {
    for batch in stream().chunks(BATCH) {
        ingest_batch(conn, batch);
    }
}

/// The in-process ground truth: the same builder knobs, the same
/// stream, the same publish cadence.
fn in_process() -> (f64, Vec<(Vec<f64>, u64)>) {
    let (mut writer, reader) = Rds::builder()
        .dim(DIM)
        .alpha(ALPHA)
        .seed(SEED)
        .expected_len(N_POINTS)
        .publish_every(PUBLISH_EVERY)
        .build_split()
        .expect("valid config");
    for p in stream() {
        writer.process(Point::new(p));
    }
    let snap = reader.snapshot();
    let records = snap
        .query_k_at(5, 7)
        .iter()
        .map(|r| (r.rep.coords().to_vec(), r.count))
        .collect();
    (snap.f0_estimate(), records)
}

fn served_f0(addr: std::net::SocketAddr) -> F0Response {
    let (status, body) = client::request_once(addr, "GET", "/f0", None).expect("f0");
    assert_eq!(status, 200, "{body}");
    serde_json::from_str(&body).expect("f0 response parses")
}

fn served_query(addr: std::net::SocketAddr) -> QueryResponse {
    let (status, body) =
        client::request_once(addr, "GET", "/query_k?k=5&seed=7", None).expect("query_k");
    assert_eq!(status, 200, "{body}");
    serde_json::from_str(&body).expect("query response parses")
}

#[test]
fn over_the_wire_results_are_bit_identical_to_in_process() {
    let handle = start(backend());
    let addr = handle.addr();
    let mut conn = Conn::connect(addr).expect("connect");
    ingest_all(&mut conn);
    drop(conn);

    let f0 = served_f0(addr);
    assert_eq!(f0.seen, N_POINTS);
    assert_eq!(f0.epoch, N_POINTS / PUBLISH_EVERY, "cadence fired per batch");

    let q = served_query(addr);
    let (expected_f0, expected_records) = in_process();

    // bit-identical: exact f64 equality, not approximate
    assert_eq!(f0.f0.to_bits(), expected_f0.to_bits(), "served f0 {} != in-process {}", f0.f0, expected_f0);
    assert_eq!(q.records.len(), expected_records.len());
    for (got, (rep, count)) in q.records.iter().zip(&expected_records) {
        assert_eq!(&got.rep, rep, "representative coordinates must round-trip exactly");
        assert_eq!(got.count, *count);
    }
    handle.shutdown_and_join();
}

#[test]
fn concurrent_readers_see_only_epoch_monotone_snapshots() {
    let mut b = backend();
    b.publish_every = Some(16);
    let handle = start(b);
    let addr = handle.addr();

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        // sustained ingest: the whole stream, 3 times over, in small batches
        let writer = scope.spawn(|| {
            let mut conn = Conn::connect(addr).expect("writer connect");
            for _ in 0..3 {
                for batch in stream().chunks(20) {
                    ingest_batch(&mut conn, batch);
                }
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        // N concurrent query clients, each on its own keep-alive conn
        let mut readers = Vec::new();
        for _ in 0..4 {
            readers.push(scope.spawn(|| {
                let mut conn = Conn::connect(addr).expect("reader connect");
                let mut last_epoch = 0u64;
                let mut last_seen = 0u64;
                let mut observed = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) || observed < 20 {
                    let (status, body) =
                        conn.request("GET", "/f0", None).expect("f0 during ingest");
                    assert_eq!(status, 200, "{body}");
                    let f0: F0Response = serde_json::from_str(&body).expect("parses");
                    assert!(
                        f0.epoch >= last_epoch,
                        "epoch went backwards: {} after {last_epoch}",
                        f0.epoch
                    );
                    assert!(
                        f0.seen >= last_seen,
                        "seen went backwards: {} after {last_seen}",
                        f0.seen
                    );
                    last_epoch = f0.epoch;
                    last_seen = f0.seen;
                    observed += 1;
                    if observed >= 2000 {
                        break;
                    }
                }
                assert!(observed >= 20, "reader barely ran");
            }));
        }
        writer.join().expect("writer thread");
        for r in readers {
            r.join().expect("reader thread");
        }
    });
    handle.shutdown_and_join();
}

#[test]
fn checkpoint_over_http_restores_into_an_identical_server() {
    let dir = std::env::temp_dir().join(format!("rds_server_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let chk = dir.join("state.chk");
    let chk_str = chk.to_str().expect("utf-8 temp path").to_string();

    // server A: ingest, checkpoint over HTTP, record its answers
    let a = start(backend());
    let addr_a = a.addr();
    let mut conn = Conn::connect(addr_a).expect("connect");
    ingest_all(&mut conn);
    let (status, body) = conn
        .request(
            "POST",
            "/checkpoint/save",
            Some(&format!("{{\"path\": \"{chk_str}\"}}")),
        )
        .expect("checkpoint save");
    assert_eq!(status, 200, "{body}");
    drop(conn);
    let f0_a = served_f0(addr_a);
    let q_a = served_query(addr_a);
    a.shutdown_and_join();

    // server B: boots from the container, must answer identically
    let mut backend_b = BackendConfig::new(DIM, ALPHA);
    backend_b.restore_from = Some(chk_str.clone());
    backend_b.publish_every = Some(PUBLISH_EVERY);
    let b = start(backend_b);
    let addr_b = b.addr();
    let f0_b = served_f0(addr_b);
    let q_b = served_query(addr_b);
    assert_eq!(f0_a.f0.to_bits(), f0_b.f0.to_bits(), "restored f0 must be bit-identical");
    assert_eq!(f0_a.seen, f0_b.seen);
    assert_eq!(q_a.records.len(), q_b.records.len());
    for (ra, rb) in q_a.records.iter().zip(&q_b.records) {
        assert_eq!(ra.rep, rb.rep);
        assert_eq!(ra.count, rb.count);
    }
    b.shutdown_and_join();

    // server C: starts empty, restores over live HTTP, same answers
    let c = start(backend());
    let addr_c = c.addr();
    let (status, body) = client::request_once(
        addr_c,
        "POST",
        "/checkpoint/restore",
        Some(&format!("{{\"path\": \"{chk_str}\"}}")),
    )
    .expect("live restore");
    assert_eq!(status, 200, "{body}");
    let f0_c = served_f0(addr_c);
    assert_eq!(f0_a.f0.to_bits(), f0_c.f0.to_bits(), "live restore must be bit-identical");
    let q_c = served_query(addr_c);
    assert_eq!(q_a.records.len(), q_c.records.len());
    c.shutdown_and_join();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_with_checkpoint_persists_final_state() {
    let dir = std::env::temp_dir().join(format!("rds_server_e2e_shut_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let chk = dir.join("final.chk");
    let chk_str = chk.to_str().expect("utf-8 temp path").to_string();

    let a = start(backend());
    let addr = a.addr();
    let mut conn = Conn::connect(addr).expect("connect");
    ingest_all(&mut conn);
    let f0_before = served_f0(addr);
    let (status, body) = conn
        .request(
            "POST",
            "/admin/shutdown",
            Some(&format!("{{\"checkpoint_path\": \"{chk_str}\"}}")),
        )
        .expect("shutdown");
    assert_eq!(status, 200, "{body}");
    drop(conn);
    a.join();

    let mut backend_b = BackendConfig::new(DIM, ALPHA);
    backend_b.restore_from = Some(chk_str);
    let b = start(backend_b);
    let f0_after = served_f0(b.addr());
    assert_eq!(f0_before.f0.to_bits(), f0_after.f0.to_bits());
    assert_eq!(f0_before.seen, f0_after.seen);
    b.shutdown_and_join();

    let _ = std::fs::remove_dir_all(&dir);
}
