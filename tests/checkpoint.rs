//! Crash-recovery acceptance suite for the checkpoint/restore subsystem:
//! `checkpoint → drop → restore → continue ingesting` must produce
//! **bit-identical** `query_k`/`f0_estimate` results to an uninterrupted
//! run, for every (window, shards) backend variant; and damaged or
//! mismatched checkpoint files must surface as typed
//! [`RdsError::Checkpoint`] errors, never panics or corrupt estimates.

use robust_distinct_sampling::core::{GroupRecord, RdsError};
use robust_distinct_sampling::{PublishCadence, Rds, RdsReader, RdsWriter, WriterCheckpoint};
use rds_geometry::Point;
use rds_stream::{Stamp, StreamItem, Window};

/// Deterministic mixed stream: `n_entities` well-separated entities with
/// near-duplicate jitter, stamped so that sequence- and time-based
/// windows both exercise expiry (4 items per time step).
fn item(i: u64, n_entities: u64) -> StreamItem {
    let e = i % n_entities;
    let jitter = 0.01 * ((i / n_entities) % 5) as f64;
    StreamItem::new(
        Point::new(vec![e as f64 * 10.0 + jitter, e as f64]),
        Stamp::new(i, i / 4),
    )
}

fn pair(window: Window, shards: usize) -> (RdsWriter, RdsReader) {
    Rds::builder()
        .dim(2)
        .alpha(0.5)
        .seed(23)
        .expected_len(1 << 11)
        .window(window)
        .shards(shards)
        .publish_cadence(PublishCadence::Manual)
        .build_split()
        .expect("valid configuration")
}

fn backends() -> Vec<(Window, usize)> {
    vec![
        (Window::Infinite, 1),
        (Window::Infinite, 3),
        (Window::Sequence(64), 1),
        (Window::Sequence(64), 3),
        (Window::Time(16), 1),
        (Window::Time(16), 3),
    ]
}

fn assert_same_records(a: &[GroupRecord], b: &[GroupRecord], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: sample count diverged");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.rep, y.rep, "{what}: representative diverged");
        assert_eq!(x.count, y.count, "{what}: group count diverged");
        assert_eq!(x.cell_hash, y.cell_hash, "{what}: cell hash diverged");
        assert_eq!(x.reservoir, y.reservoir, "{what}: reservoir member diverged");
    }
}

#[test]
fn crash_recovery_is_bit_identical_across_all_backends() {
    let total = 600u64;
    let crash_at = 300u64;
    let n_entities = 24u64;
    let dir = std::env::temp_dir().join(format!("rds-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    for (variant, (window, shards)) in backends().into_iter().enumerate() {
        let what = format!("(window {window:?}, shards {shards})");
        // The uninterrupted reference run.
        let (mut uw, ur) = pair(window, shards);
        for i in 0..total {
            uw.process_item(item(i, n_entities));
        }
        uw.publish();
        let reference = ur.snapshot();

        // The crashing run: first half, checkpoint to disk, drop.
        let path = dir.join(format!("variant-{variant}.chk"));
        let (mut cw, _cr) = pair(window, shards);
        for i in 0..crash_at {
            cw.process_item(item(i, n_entities));
        }
        cw.checkpoint_to(&path).expect("checkpoint writes");
        drop(cw); // the "crash": every in-memory structure is gone

        // Restore from the container and continue with the second half.
        let (mut rw, rr) = Rds::builder()
            .publish_cadence(PublishCadence::Manual)
            .restore_from(&path)
            .unwrap_or_else(|e| panic!("{what}: restore failed: {e}"));
        assert_eq!(rw.seen(), crash_at, "{what}: restored arrival counter");
        assert_eq!(rw.window(), window, "{what}: restored window model");
        assert_eq!(rw.shards(), shards, "{what}: restored shard count");
        for i in crash_at..total {
            rw.process_item(item(i, n_entities));
        }
        rw.publish();
        let recovered = rr.snapshot();

        // Bit-identical estimates and samples, including replayed draws.
        assert_eq!(recovered.seen(), reference.seen(), "{what}: seen");
        assert_eq!(
            recovered.f0_estimate(),
            reference.f0_estimate(),
            "{what}: f0 must match an uninterrupted run exactly"
        );
        for draw in [1u64, 7, 42, 1 << 33] {
            assert_same_records(
                &recovered.query_k_at(5, draw),
                &reference.query_k_at(5, draw),
                &format!("{what} draw {draw}"),
            );
            assert_eq!(
                recovered.query_at(draw).map(|r| r.rep),
                reference.query_at(draw).map(|r| r.rep),
                "{what}: single draw {draw}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restored_window_keeps_sliding_and_expiring() {
    // After a restore, window expiry (including `advance` with no new
    // items) must keep working exactly as before the crash.
    for shards in [1usize, 2] {
        let (mut cw, _) = pair(Window::Time(16), shards);
        for i in 0..200u64 {
            cw.process_item(item(i, 20));
        }
        let chk = cw.checkpoint();
        drop(cw);
        let (mut rw, rr) = Rds::builder()
            .publish_cadence(PublishCadence::Manual)
            .restore(chk)
            .expect("restores");
        assert!(rr.f0_estimate() > 0.0, "warm snapshot serves pre-crash state");
        // the clock moves far past the window with no new items
        rw.advance(Stamp::new(200, 10_000));
        rw.publish();
        assert_eq!(
            rr.f0_estimate(),
            0.0,
            "shards {shards}: everything must expire after the restored advance"
        );
    }
}

#[test]
fn restore_with_mismatched_config_is_a_typed_error() {
    let (mut cw, _) = pair(Window::Sequence(64), 2);
    for i in 0..100u64 {
        cw.process_item(item(i, 10));
    }
    let chk = cw.checkpoint();
    // matching explicit parameters restore fine
    assert!(Rds::builder()
        .dim(2)
        .alpha(0.5)
        .seed(23)
        .window(Window::Sequence(64))
        .shards(2)
        .restore(chk.clone())
        .is_ok());
    // each conflicting parameter is a typed checkpoint error
    let cases: Vec<(&str, Result<_, RdsError>)> = vec![
        ("alpha", Rds::builder().alpha(0.9).restore(chk.clone())),
        ("dim", Rds::builder().dim(3).restore(chk.clone())),
        ("seed", Rds::builder().seed(1).restore(chk.clone())),
        (
            "window model",
            Rds::builder().window(Window::Time(64)).restore(chk.clone()),
        ),
        (
            "window width",
            Rds::builder().window(Window::Sequence(32)).restore(chk.clone()),
        ),
        ("shards", Rds::builder().shards(3).restore(chk.clone())),
        ("expected_len", Rds::builder().expected_len(4).restore(chk.clone())),
        ("k", Rds::builder().k(5).restore(chk.clone())),
        ("kappa0", Rds::builder().kappa0(1.0).restore(chk.clone())),
        ("eps", Rds::builder().count_accuracy(0.25).restore(chk)),
    ];
    for (name, result) in cases {
        match result {
            Err(RdsError::Checkpoint { reason }) => {
                assert!(
                    reason.contains("config mismatch"),
                    "{name}: unexpected reason `{reason}`"
                );
            }
            other => panic!("{name}: expected RdsError::Checkpoint, got {other:?}"),
        }
    }
}

#[test]
fn damaged_checkpoint_files_are_typed_errors_never_panics() {
    let dir = std::env::temp_dir().join(format!("rds-damaged-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("good.chk");
    let (mut cw, _) = pair(Window::Sequence(64), 2);
    for i in 0..100u64 {
        cw.process_item(item(i, 10));
    }
    cw.checkpoint_to(&path).expect("writes");
    let good = std::fs::read_to_string(&path).expect("reads");

    let restore_text = |text: &str| -> Result<(), RdsError> {
        let p = dir.join("case.chk");
        std::fs::write(&p, text).expect("writes case");
        Rds::builder().restore_from(&p).map(|_| ())
    };

    // a pristine container restores
    assert!(restore_text(&good).is_ok());
    // missing file
    assert!(matches!(
        Rds::builder().restore_from(dir.join("missing.chk")),
        Err(RdsError::Checkpoint { .. })
    ));
    // truncations at several depths (header, payload, mid-number)
    for frac in [1usize, 3, 10, 17, 50, 90] {
        let cut = good.len() * frac / 100;
        assert!(
            matches!(restore_text(&good[..cut]), Err(RdsError::Checkpoint { .. })),
            "truncation at {frac}% must be a typed error"
        );
    }
    // bit rot in the payload fails the checksum
    let rotted = good.replacen("\"fed\":100", "\"fed\":101", 1);
    assert_ne!(rotted, good, "fixture: the fed field must exist");
    match restore_text(&rotted) {
        Err(RdsError::Checkpoint { reason }) => {
            assert!(reason.contains("checksum"), "reason: {reason}")
        }
        other => panic!("expected checksum failure, got {other:?}"),
    }
    // foreign magic and future version are named in the error
    match restore_text(&good.replacen("rds-checkpoint", "other-format", 1)) {
        Err(RdsError::Checkpoint { reason }) => {
            assert!(reason.contains("magic"), "reason: {reason}")
        }
        other => panic!("expected magic failure, got {other:?}"),
    }
    match restore_text(&good.replacen("\"version\":1", "\"version\":2", 1)) {
        Err(RdsError::Checkpoint { reason }) => {
            assert!(reason.contains("version"), "reason: {reason}")
        }
        other => panic!("expected version failure, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn container_json_round_trips_the_checkpoint() {
    let (mut cw, _) = pair(Window::Infinite, 1);
    for i in 0..80u64 {
        cw.process_item(item(i, 8));
    }
    cw.publish();
    let chk = cw.checkpoint();
    let wire = chk.to_container_json();
    let back = WriterCheckpoint::from_container_json(&wire).expect("verifies");
    assert_eq!(back.seen(), chk.seen());
    assert_eq!(back.epoch(), chk.epoch());
    assert_eq!(back.window(), chk.window());
    assert_eq!(back.shards(), chk.shards());
    assert_eq!(back.cfg(), chk.cfg());
    // canonical serialization: re-serializing the parsed container is
    // byte-stable (what makes the checksum meaningful)
    assert_eq!(back.to_container_json(), wire);
}

#[test]
fn restore_never_reuses_an_epoch_for_different_content() {
    // Epochs version content. A checkpoint taken mid-interval (items
    // processed after the last publication) must surface its warm
    // snapshot as a NEW epoch — a pre-crash consumer that cached the
    // old epoch's answers would otherwise see the same epoch serve
    // different results.
    let (mut cw, cr) = Rds::builder()
        .dim(2)
        .alpha(0.5)
        .seed(23)
        .publish_every(50)
        .build_split()
        .expect("valid");
    for i in 0..80u64 {
        cw.process_item(item(i, 60));
    }
    // epoch 1 published at item 50, covering 50 items
    assert_eq!(cr.epoch(), 1);
    assert_eq!(cr.seen(), 50);
    let pre_crash_f0 = cr.f0_estimate();
    let chk = cw.checkpoint(); // 30 unpublished items beyond epoch 1
    drop(cw);
    let (_rw, rr) = Rds::builder()
        .publish_cadence(PublishCadence::Manual)
        .restore(chk)
        .expect("restores");
    assert_eq!(rr.seen(), 80, "warm snapshot covers the full state");
    assert_eq!(
        rr.epoch(),
        2,
        "content beyond epoch 1 must not be served under epoch 1"
    );
    assert_ne!(rr.f0_estimate(), pre_crash_f0, "fixture: the content differs");

    // ...and a checkpoint that coincides with a publication keeps its
    // epoch (identical content, identical number).
    let (mut cw, _) = pair(Window::Infinite, 1);
    for i in 0..50u64 {
        cw.process_item(item(i, 25));
    }
    cw.publish();
    let chk = cw.checkpoint();
    let (_rw, rr) = Rds::builder().restore(chk).expect("restores");
    assert_eq!(rr.epoch(), 1, "published content keeps its epoch");

    // ...but an `advance` between publish and checkpoint dirties window
    // content without processing an item — the restored snapshot must
    // not reuse the epoch that served the pre-advance entries.
    let (mut cw, cr) = pair(Window::Time(16), 1);
    for i in 0..50u64 {
        cw.process_item(item(i, 25));
    }
    cw.publish();
    assert!(cr.f0_estimate() > 0.0);
    cw.advance(Stamp::new(50, 10_000)); // expires everything, no items
    let chk = cw.checkpoint();
    drop(cw);
    let (_rw, rr) = Rds::builder()
        .publish_cadence(PublishCadence::Manual)
        .restore(chk)
        .expect("restores");
    assert_eq!(
        rr.epoch(),
        2,
        "advance-expired content must not be served under the old epoch"
    );
    assert_eq!(rr.f0_estimate(), 0.0);
}

#[test]
fn restored_pair_publishes_on_cadence_from_the_builder() {
    // Cadence is a runtime preference, not checkpointed state: the
    // restoring builder chooses it.
    let (mut cw, _) = pair(Window::Infinite, 1);
    for i in 0..10u64 {
        cw.process_item(item(i, 5));
    }
    let chk = cw.checkpoint();
    let (mut rw, rr) = Rds::builder()
        .publish_every(4)
        .restore(chk)
        .expect("restores");
    let epoch = rr.epoch();
    for i in 10..14u64 {
        rw.process_item(item(i, 5));
    }
    assert_eq!(rr.epoch(), epoch + 1, "EveryN(4) cadence applies after restore");
}
