//! Section 3: the samplers on *general* (non-well-separated) datasets.
//!
//! Theorem 3.1 promises `Pr[q ∈ Ball(p, alpha)] = Θ(1/F0)` for every
//! stream point `p`, where `F0` is the minimum-cardinality partition
//! size. These tests stream overlapping/chained clusters — where no
//! natural partition exists — and check the Θ(1/n) guarantee empirically
//! plus the greedy-partition machinery the proof relies on.

use rds_core::{RobustL0Sampler, SamplerConfig, SlidingWindowSampler};
use rds_datasets::partition;
use rds_geometry::{Ball, Point};
use rds_stream::{Stamp, StreamItem, Window};

/// A chained dataset: points at 0, 0.8, 1.6, ..., pairwise-adjacent links
/// but no well-separated grouping (alpha = 1).
fn chain(n: usize, step: f64) -> Vec<Point> {
    (0..n).map(|i| Point::new(vec![i as f64 * step])).collect()
}

#[test]
fn chained_points_are_not_well_separated() {
    let pts = chain(10, 0.8);
    assert!(!partition::is_well_separated(&pts, 1.0));
}

#[test]
fn sampler_accepts_chains_without_duplicating_regions() {
    // Every stored representative is >alpha from every other: the greedy
    // partition structure of the Theorem 3.1 proof.
    let pts = chain(40, 0.8);
    let alpha = 1.0;
    let cfg = SamplerConfig::builder(1, alpha)
        .seed(3)
        .expected_len(pts.len() as u64).build().unwrap();
    let mut s = RobustL0Sampler::try_new(cfg).unwrap();
    for p in &pts {
        s.process(p);
    }
    let acc = s.accept_set();
    let rej = s.reject_set();
    let reps: Vec<&Point> = acc.iter().chain(rej.iter()).map(|r| &r.rep).collect();
    for i in 0..reps.len() {
        for j in (i + 1)..reps.len() {
            assert!(!reps[i].within(reps[j], alpha));
        }
    }
    // the candidate count is within a constant of the optimum partition
    let opt = partition::min_partition_size_brute(&pts[..12], alpha);
    assert!(opt >= 1);
}

#[test]
fn ball_coverage_probability_is_theta_one_over_n() {
    // Theorem 3.1 statement, checked empirically on a general dataset:
    // overlapping pairs of clusters chained at 0.9 * alpha.
    let alpha = 1.0;
    let mut pts = Vec::new();
    // 16 chained pairs: group-ish regions {6i, 6i + 0.9}
    for i in 0..16 {
        pts.push(Point::new(vec![i as f64 * 6.0]));
        pts.push(Point::new(vec![i as f64 * 6.0 + 0.9]));
    }
    let n_opt = partition::min_partition_size_brute(&pts[..16.min(pts.len())], alpha).max(1);
    assert!(n_opt >= 1);

    // For each probe point p, estimate Pr[q ∈ Ball(p, alpha)]
    let runs = 600u64;
    let mut hits = vec![0u64; pts.len()];
    let mut recorded = 0u64;
    for run in 0..runs {
        let cfg = SamplerConfig::builder(1, alpha)
            .seed(run * 331 + 17)
            .expected_len(pts.len() as u64)
            .kappa0(1.0).build().unwrap();
        let mut s = RobustL0Sampler::try_new(cfg).unwrap();
        for p in &pts {
            s.process(p);
        }
        // with this deliberately small threshold the non-emptiness
        // guarantee (Lemma 2.5) has a 2^-threshold failure tail
        let Some(q) = s.query().cloned() else {
            continue;
        };
        recorded += 1;
        for (i, p) in pts.iter().enumerate() {
            if Ball::new(p.clone(), alpha).contains(&q) {
                hits[i] += 1;
            }
        }
    }
    assert!(recorded > runs * 9 / 10, "too many empty accept sets");
    // the minimum partition has 16 groups (one per chained pair); the
    // guarantee is Theta(1/16) for every point, i.e. all coverage
    // probabilities within a constant band
    let probs: Vec<f64> = hits.iter().map(|&h| h as f64 / recorded as f64).collect();
    let lo = probs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = probs.iter().cloned().fold(0.0, f64::max);
    assert!(lo > 0.25 / 16.0, "some ball almost never covered: {lo}");
    assert!(hi < 8.0 / 16.0, "some ball covered too often: {hi}");
    assert!(
        hi / lo < 8.0,
        "coverage spread {hi}/{lo} violates Theta(1/n)"
    );
}

#[test]
fn sliding_window_handles_general_data_too() {
    // Corollary 3.4: same guarantee in the window model; here a smoke
    // check that chained data cycles through a window without panics and
    // always yields samples.
    let alpha = 1.0;
    let pts = chain(30, 0.8);
    let cfg = SamplerConfig::builder(1, alpha)
        .seed(9)
        .expected_len(300)
        .kappa0(1.0).build().unwrap();
    let mut s = SlidingWindowSampler::try_new(cfg, Window::Sequence(20)).unwrap();
    for i in 0..300u64 {
        let p = &pts[(i as usize) % pts.len()];
        s.process(&StreamItem::new(p.clone(), Stamp::at(i)));
        let q = s.query().expect("window non-empty");
        // the sample must be within alpha of some live point
        assert!(pts.iter().any(|x| x.within(&q.latest, alpha)));
    }
}

#[test]
fn greedy_partition_count_is_stable_across_orders() {
    // Lemma 3.3 consequence: any greedy order gives Theta(opt) groups.
    let pts = chain(14, 0.7);
    let alpha = 1.0;
    let forward = partition::partition_size(&partition::greedy_partition(&pts, alpha));
    let mut rev = pts.clone();
    rev.reverse();
    let backward = partition::partition_size(&partition::greedy_partition(&rev, alpha));
    let opt = partition::min_partition_size_brute(&pts, alpha);
    assert!(forward <= opt && backward <= opt);
    assert!(opt <= 3 * forward && opt <= 3 * backward);
}
