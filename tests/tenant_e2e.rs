//! Multi-tenant end-to-end suite over loopback HTTP: the tenant routes
//! must answer **bit-identically** to an in-process [`TenantRegistry`]
//! fed the same per-tenant batches — even while the served registry is
//! squeezed under a budget that forces evictions between requests — the
//! global stream and the tenant streams must not bleed into each other,
//! and an HTTP-initiated shutdown must park every tenant on disk so a
//! fresh server on the same spill directory resumes them exactly.

use rds_server::api_types::{F0Response, QueryResponse, TenantHealthResponse};
use rds_server::client::{self, Conn};
use rds_server::{bind, BackendConfig, ServerConfig, TenancyConfig};
use rds_geometry::Point;
use rds_tenant::{TenantRegistry, TenantTemplate};

const DIM: usize = 2;
const ALPHA: f64 = 0.5;
const SEED: u64 = 9;
const EXPECTED_LEN: u64 = 512;
const TENANTS: usize = 6;
const ROUNDS: u64 = 4;
const BATCH: u64 = 25;

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rds-tenant-e2e-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn tenant_id(t: usize) -> String {
    format!("tenant-{t}")
}

/// Tenant `t`'s batch for round `r`: per-tenant distinct lattices with
/// near-duplicate jitter, disjoint across tenants so cross-talk would
/// show up in the counts.
fn batch(t: usize, r: u64) -> Vec<Vec<f64>> {
    (0..BATCH)
        .map(|j| {
            let i = r * BATCH + j;
            let e = i % 10;
            let jitter = 0.01 * ((i / 10) % 5) as f64;
            vec![
                t as f64 * 1_000.0 + (e % 4) as f64 * 10.0 + jitter,
                (e / 4) as f64 * 10.0,
            ]
        })
        .collect()
}

fn backend() -> BackendConfig {
    let mut b = BackendConfig::new(DIM, ALPHA);
    b.seed = SEED;
    b.expected_len = EXPECTED_LEN;
    b.publish_every = Some(1);
    b
}

/// The template `bind` derives from [`backend`] for its registry; the
/// in-process control must be built from the very same knobs.
fn template() -> TenantTemplate {
    let b = backend();
    let mut t = TenantTemplate::new(b.dim, b.alpha);
    t.window = b.window;
    t.seed = b.seed;
    t.expected_len = b.expected_len;
    t.k = b.k;
    t.eps = b.eps;
    t
}

fn points(batch: &[Vec<f64>]) -> Vec<Point> {
    batch.iter().map(|p| Point::new(p.clone())).collect()
}

/// One tenant's words after a full run, measured against a throwaway
/// registry, so the served budget can be sized to hold only ~2 of the
/// 6 tenants — every round then evicts somebody.
fn words_per_tenant(dir: &std::path::Path) -> usize {
    let probe =
        TenantRegistry::new(template(), usize::MAX / 2, dir.join("probe")).expect("probe");
    let mut words = 1;
    for r in 0..ROUNDS {
        let ack = probe
            .ingest("probe", &points(&batch(0, r)), None)
            .expect("probe ingest");
        words = ack.words;
    }
    words.max(1)
}

fn start(cfg_tenants: Option<TenancyConfig>) -> rds_server::ServerHandle {
    let mut cfg = ServerConfig::new(backend());
    cfg.threads = 4;
    cfg.tenants = cfg_tenants;
    bind(cfg).expect("bind server")
}

fn http_ingest(conn: &mut Conn, id: &str, batch: &[Vec<f64>]) {
    let rows: Vec<String> = batch
        .iter()
        .map(|p| {
            format!(
                "[{}]",
                p.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",")
            )
        })
        .collect();
    let body = format!("{{\"points\": [{}]}}", rows.join(","));
    let (status, resp) = conn
        .request("POST", &format!("/t/{id}/ingest"), Some(&body))
        .expect("tenant ingest");
    assert_eq!(status, 200, "{resp}");
}

fn http_f0(addr: std::net::SocketAddr, id: &str) -> F0Response {
    let (status, body) =
        client::request_once(addr, "GET", &format!("/t/{id}/f0"), None).expect("f0");
    assert_eq!(status, 200, "{body}");
    serde_json::from_str(&body).expect("f0 response parses")
}

fn http_query(addr: std::net::SocketAddr, id: &str) -> QueryResponse {
    let (status, body) = client::request_once(
        addr,
        "GET",
        &format!("/t/{id}/query_k?k=5&seed=7"),
        None,
    )
    .expect("query_k");
    assert_eq!(status, 200, "{body}");
    serde_json::from_str(&body).expect("query response parses")
}

fn http_health(addr: std::net::SocketAddr) -> TenantHealthResponse {
    let (status, body) = client::request_once(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200, "{body}");
    serde_json::from_str(&body).expect("tenant health parses")
}

/// Served answers vs the in-process control for one tenant, bit-for-bit.
fn assert_tenant_matches(addr: std::net::SocketAddr, control: &TenantRegistry, id: &str) {
    let f0 = http_f0(addr, id);
    let expected = control.f0_estimate(id).expect("control f0");
    assert_eq!(
        f0.f0.to_bits(),
        expected.to_bits(),
        "tenant {id}: served f0 {} != control {expected}",
        f0.f0
    );
    let snap = control.snapshot(id).expect("control snapshot");
    assert_eq!(f0.seen, snap.seen(), "tenant {id}: seen diverged");

    let q = http_query(addr, id);
    let expected_records = control.query_k_at(id, 5, 7).expect("control query");
    assert_eq!(q.records.len(), expected_records.len(), "tenant {id}");
    for (got, want) in q.records.iter().zip(&expected_records) {
        assert_eq!(
            got.rep,
            want.rep.coords().to_vec(),
            "tenant {id}: representative coordinates must round-trip exactly"
        );
        assert_eq!(got.count, want.count, "tenant {id}");
    }
}

#[test]
fn tenant_routes_are_bit_identical_to_in_process_under_eviction_pressure() {
    let dir = scratch("pressure");
    // A budget that holds only ~2 of the 6 tenants: the serving path
    // spills and restores constantly, and it must not be observable.
    let budget = words_per_tenant(&dir) * 5 / 2;
    let handle = start(Some(TenancyConfig {
        budget_words: budget,
        spill_dir: dir.join("spill").display().to_string(),
    }));
    let addr = handle.addr();
    let control =
        TenantRegistry::new(template(), usize::MAX / 2, dir.join("control")).expect("control");

    let mut conn = Conn::connect(addr).expect("connect");
    for r in 0..ROUNDS {
        for t in 0..TENANTS {
            let id = tenant_id(t);
            let b = batch(t, r);
            http_ingest(&mut conn, &id, &b);
            control
                .ingest(&id, &points(&b), None)
                .expect("control ingest");
        }
    }
    drop(conn);

    for t in 0..TENANTS {
        assert_tenant_matches(addr, &control, &tenant_id(t));
    }

    let health = http_health(addr);
    assert_eq!(health.tenants, TENANTS as u64);
    assert!(
        health.spills > 0,
        "a budget of {budget} words over {TENANTS} tenants must have evicted"
    );
    assert!(
        health.resident_words <= health.budget_words,
        "resident {} exceeds budget {}",
        health.resident_words,
        health.budget_words
    );
    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn global_and_tenant_streams_do_not_bleed_into_each_other() {
    let dir = scratch("isolation");
    let handle = start(Some(TenancyConfig {
        budget_words: 1 << 24,
        spill_dir: dir.join("spill").display().to_string(),
    }));
    let addr = handle.addr();
    let mut conn = Conn::connect(addr).expect("connect");

    // 25 points into the global stream, 50 into tenant a, none into b.
    let global = batch(0, 0);
    let rows: Vec<String> = global
        .iter()
        .map(|p| {
            format!(
                "[{}]",
                p.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",")
            )
        })
        .collect();
    let body = format!("{{\"points\": [{}]}}", rows.join(","));
    let (status, resp) = conn.request("POST", "/ingest", Some(&body)).expect("global ingest");
    assert_eq!(status, 200, "{resp}");
    http_ingest(&mut conn, "a", &batch(1, 0));
    http_ingest(&mut conn, "a", &batch(1, 1));
    drop(conn);

    let (status, body) = client::request_once(addr, "GET", "/f0", None).expect("global f0");
    assert_eq!(status, 200, "{body}");
    let global_f0: F0Response = serde_json::from_str(&body).expect("parses");
    assert_eq!(global_f0.seen, BATCH, "global stream counts only /ingest");
    assert_eq!(http_f0(addr, "a").seen, 2 * BATCH, "tenant a counts only its own");
    assert_eq!(http_f0(addr, "b").seen, 0, "tenant b was never written");
    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn http_shutdown_parks_tenants_and_a_restart_resumes_them_bit_identically() {
    let dir = scratch("restart");
    let tenancy = || TenancyConfig {
        budget_words: 1 << 24,
        spill_dir: dir.join("spill").display().to_string(),
    };

    // Server A: ingest three tenants, record their answers, then stop
    // it the way an operator would — over the wire.
    let a = start(Some(tenancy()));
    let addr_a = a.addr();
    let mut conn = Conn::connect(addr_a).expect("connect");
    for t in 0..3 {
        for r in 0..ROUNDS {
            http_ingest(&mut conn, &tenant_id(t), &batch(t, r));
        }
    }
    let before: Vec<(F0Response, QueryResponse)> = (0..3)
        .map(|t| (http_f0(addr_a, &tenant_id(t)), http_query(addr_a, &tenant_id(t))))
        .collect();
    let (status, body) = conn.request("POST", "/admin/shutdown", None).expect("shutdown");
    assert_eq!(status, 200, "{body}");
    drop(conn);
    a.join();

    // Server B on the same spill directory: every tenant must resume
    // exactly where it stopped — same f0 bits, same seen, same samples.
    let b = start(Some(tenancy()));
    let addr_b = b.addr();
    for (t, (f0_a, q_a)) in before.iter().enumerate() {
        let id = tenant_id(t);
        let f0_b = http_f0(addr_b, &id);
        assert_eq!(
            f0_a.f0.to_bits(),
            f0_b.f0.to_bits(),
            "tenant {id}: restarted f0 must be bit-identical"
        );
        assert_eq!(f0_a.seen, f0_b.seen, "tenant {id}: seen diverged across restart");
        let q_b = http_query(addr_b, &id);
        assert_eq!(q_a.records.len(), q_b.records.len(), "tenant {id}");
        for (ra, rb) in q_a.records.iter().zip(&q_b.records) {
            assert_eq!(ra.rep, rb.rep, "tenant {id}");
            assert_eq!(ra.count, rb.count, "tenant {id}");
        }
    }
    b.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}
